//! Shared-walk scaling on the taxi-lattice verification: times the
//! per-point PR-3 engine against the Rep-view-quotient shared multi-walk
//! at common bounds, gates on the deepest one (items {1,2,3}, length
//! ≤ 8, shared walk ≥ 5× faster with identical language sizes), then
//! pushes the shared walk past the old frontier (items {1,2,3} at
//! length ≤ 10, items {1,2,3,4} at length ≤ 8) and measures
//! item-permutation orbit reduction on the SSqueue join check.
//!
//! Results go to `BENCH_symmetry_scaling.json`; CI requires
//! `within_target: true`.

use relax_bench::experiments::symmetry::{run, to_json, TARGET_SPEEDUP};

fn main() {
    println!("== Shared multi-point walk vs per-point engine ==\n");
    let common = [
        (vec![1, 2], 5usize),
        (vec![1, 2, 3], 6),
        (vec![1, 2, 3], 7),
        (vec![1, 2, 3], 8),
    ];
    let frontier = [
        (vec![1, 2, 3], 9usize),
        (vec![1, 2, 3], 10),
        (vec![1, 2, 3, 4], 6),
        (vec![1, 2, 3, 4], 8),
    ];
    let orbit = [(vec![1, 2], 6usize), (vec![1, 2, 3], 5)];

    let (tables, common_rows, frontier_rows, orbit_rows) = run(&common, &frontier, &orbit);
    println!("common bounds (per-point vs shared):\n{}", tables[0]);
    println!("frontier bounds (shared walk only):\n{}", tables[1]);
    println!(
        "SSqueue join check (unreduced vs orbit-reduced):\n{}",
        tables[2]
    );

    let gate = common_rows.last().expect("common bounds nonempty");
    println!(
        "gate: items {:?}, len ≤ {} → {:.2}x (target ≥ {TARGET_SPEEDUP:.0}x, holds={}, agree={})",
        gate.items, gate.max_len, gate.speedup, gate.holds, gate.agree
    );

    let json = to_json(&common_rows, &frontier_rows, &orbit_rows);
    std::fs::write("BENCH_symmetry_scaling.json", &json)
        .expect("write BENCH_symmetry_scaling.json");
    println!("\nwrote BENCH_symmetry_scaling.json");
}
