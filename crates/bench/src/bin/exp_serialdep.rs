//! Definition 3: serial dependency relations, checked for the priority
//! queue ({Q1, Q2}) and the account ({A1, A2}).

use relax_bench::experiments::serialdep::{account_table, queue_table};

fn main() {
    println!("== Serial dependency relations (Definition 3), bounded check ==\n");
    println!("priority queue over items {{1,2}}, histories ≤ 4:");
    println!("{}", queue_table(4));
    println!("bank account over amounts {{1,2}}, histories ≤ 4:");
    println!("{}", account_table(4));
    println!("{{Q1, Q2}} (resp. {{A1, A2}}) passes; every proper subrelation fails —");
    println!("the premise of the relaxation lattices of §3.3 and §3.4.");
}
