//! Prices the structured-tracing instrumentation on the availability
//! experiment (the workload every quorum measurement runs through).
//!
//! Three configurations of the *same* seeded workload:
//!
//! * `baseline` — tracer absent (the default `Tracer::disabled()` path:
//!   one branch per would-be event);
//! * `enabled` — tracing on with a bounded 4096-event ring buffer per
//!   trial world;
//! * results are written to `BENCH_trace_overhead.json` so successive
//!   PRs can track the overhead trajectory.
//!
//! Targets: enabled ≤ 10% slowdown over baseline; the disabled path is
//! the baseline by construction (~0% — it *is* the default).

use std::time::Instant;

use relax_bench::experiments::availability::{measure_registry_traced, tradeoff_family};

const N: usize = 5;
const P_UP: f64 = 0.85;
const TRIALS: u32 = 120;
const SEED: u64 = 0x5EED;
const REPS: usize = 51;

/// Times one full sweep over the trade-off family, returning wall-clock
/// nanoseconds.
fn one_sweep(trace_capacity: usize, rep: usize) -> u128 {
    let family = tradeoff_family(N);
    let start = Instant::now();
    for na in &family {
        let reg = measure_registry_traced(
            N,
            &na.assignment,
            P_UP,
            TRIALS,
            SEED ^ rep as u64,
            trace_capacity,
        );
        std::hint::black_box(reg);
    }
    start.elapsed().as_nanos()
}

fn main() {
    // Warm-up: touch both code paths once.
    std::hint::black_box(measure_registry_traced(
        N,
        &tradeoff_family(N)[0].assignment,
        P_UP,
        10,
        SEED,
        0,
    ));
    std::hint::black_box(measure_registry_traced(
        N,
        &tradeoff_family(N)[0].assignment,
        P_UP,
        10,
        SEED,
        4096,
    ));

    // Interleave baseline and enabled reps so machine-wide noise (other
    // tenants, frequency scaling) hits both configurations equally, then
    // take the median per-rep ratio.
    let mut baselines = Vec::with_capacity(REPS);
    let mut enabled = Vec::with_capacity(REPS);
    let mut ratios: Vec<f64> = (0..REPS)
        .map(|rep| {
            let b = one_sweep(0, rep);
            let e = one_sweep(4096, rep);
            baselines.push(b);
            enabled.push(e);
            e as f64 / b as f64
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];
    let baseline_ns = *baselines.iter().min().expect("reps > 0");
    let enabled_ns = *enabled.iter().min().expect("reps > 0");
    let overhead_pct = 100.0 * (ratio - 1.0);

    println!("== Tracing overhead on the availability sweep ==\n");
    println!(
        "workload: n={N} sites, p_up={P_UP}, {TRIALS} trials x {} assignments, median ratio of {REPS} interleaved reps",
        tradeoff_family(N).len()
    );
    println!("tracing disabled (baseline): {baseline_ns:>12} ns (min rep)");
    println!("tracing enabled  (cap 4096): {enabled_ns:>12} ns (min rep)");
    println!("overhead: {overhead_pct:+.2}%  (target: <= 10%)");

    let json = format!(
        "{{\"bench\":\"trace_overhead\",\"workload\":\"availability_sweep\",\
         \"n\":{N},\"p_up\":{P_UP},\"trials\":{TRIALS},\"reps\":{REPS},\
         \"baseline_ns\":{baseline_ns},\"enabled_ns\":{enabled_ns},\
         \"overhead_pct\":{overhead_pct:.3},\"target_pct\":10.0,\
         \"within_target\":{}}}\n",
        overhead_pct <= 10.0
    );
    std::fs::write("BENCH_trace_overhead.json", &json).expect("write BENCH_trace_overhead.json");
    println!("\nwrote BENCH_trace_overhead.json");
}
