//! Delta-gossip runtime throughput: runs the same taxi-queue workload
//! through the quorum runtime in the full-log baseline configuration and
//! the optimized delta + memoized-view one, at increasing history
//! lengths, checking observable equivalence at every length.
//!
//! Results go to `BENCH_runtime_throughput.json`; CI requires
//! `within_target: true` (delta + memoization ≥ 5× faster and ≥ 10×
//! fewer wire bytes at the deepest history length, with every row
//! observably equivalent).

use relax_bench::experiments::throughput::{run, to_json, TARGET_BYTES_RATIO, TARGET_SPEEDUP};
use relax_trace::metrics::wire;
use relax_trace::Registry;

fn main() {
    println!("== Quorum-runtime throughput: full-log vs delta replication ==\n");
    let (table, rows) = run(&[128, 256, 1024], 0xD317A);
    println!("{table}");

    let gate = rows.last().expect("history lengths nonempty");
    println!(
        "gate: history {} → {:.2}x speedup (target ≥ {TARGET_SPEEDUP:.0}x), \
         {:.1}x fewer bytes (target ≥ {TARGET_BYTES_RATIO:.0}x), equivalent={}",
        gate.history_len, gate.speedup, gate.bytes_ratio, gate.equivalent
    );

    let mut reg = Registry::new();
    reg.gauge(wire::BYTES_SHIPPED)
        .set(gate.optimized_bytes as i64);
    reg.gauge(wire::MESSAGES_SENT).set(gate.messages as i64);
    println!(
        "\ngate-run wire metrics (optimized path):\n{}",
        reg.summary()
    );

    let json = to_json(&rows);
    std::fs::write("BENCH_runtime_throughput.json", &json)
        .expect("write BENCH_runtime_throughput.json");
    println!("wrote BENCH_runtime_throughput.json");
}
