//! Offline causal analysis of an exported JSONL trace.
//!
//! Ingests a trace written by `Tracer::write_jsonl` /
//! `exp_availability --trace`, rebuilds the happens-before DAG, derives
//! per-operation spans with critical-path latency attribution, and — for
//! every witnessed level transition — walks the DAG backwards to the
//! minimal cut of fault events that caused the degradation.
//!
//! ```text
//! cargo run -p relax-bench --bin trace_analyze -- TRACE.jsonl [--spans] [--staleness] [--prometheus] [--profile]
//! ```
//!
//! With no path, reads JSONL from stdin. `--spans` prints one line per
//! operation span; `--staleness` appends the staleness timeline (lag
//! samples, divergence probes, level deaths, budget exhaustions);
//! `--prometheus` appends the aggregated registry in Prometheus text
//! exposition format; `--profile` reconstructs the flight recorder's
//! hierarchical span tree (hot spans with exact self/child attribution,
//! counters, gauge timelines) from any profile events in the trace.

use relax_trace::{read_trace, staleness_report, OpOutcome, ProfileReport, TraceAnalysis};
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let show_spans = args.iter().any(|a| a == "--spans");
    let show_staleness = args.iter().any(|a| a == "--staleness");
    let show_prometheus = args.iter().any(|a| a == "--prometheus");
    let show_profile = args.iter().any(|a| a == "--profile");
    let path = args.iter().find(|a| !a.starts_with("--"));

    let input = match path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace_analyze: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("trace_analyze: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            s
        }
    };

    let parsed = match read_trace(&input) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("trace_analyze: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(h) = &parsed.header {
        if h.dropped_oldest > 0 {
            eprintln!(
                "note: ring buffer evicted {} oldest events; causal pasts may be truncated",
                h.dropped_oldest
            );
        }
    }

    let staleness = show_staleness.then(|| staleness_report(&parsed.events));
    let profile = if show_profile {
        match ProfileReport::from_events(&parsed.events) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!("trace_analyze: --profile: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let analysis = TraceAnalysis::from_trace(parsed);
    print!("{}", analysis.report());

    if let Some(s) = staleness {
        println!("\nstaleness timeline:");
        print!("{s}");
    }

    if show_spans {
        println!("\nspans:");
        for s in analysis.spans() {
            let outcome = match s.outcome {
                OpOutcome::Completed => "completed",
                OpOutcome::Refused => "refused",
                OpOutcome::TimedOut => "timed_out",
            };
            println!(
                "  t={:<6} node {} op #{:<3} {:<14} {:<9} latency {:>5} \
                 (net {} / retry {} / partition {} / local {})",
                s.begin_time,
                s.node,
                s.op_id,
                s.label.as_str(),
                outcome,
                s.latency,
                s.breakdown.network_wait,
                s.breakdown.quorum_retry_stall,
                s.breakdown.partition_stall,
                s.breakdown.local_compute,
            );
        }
    }

    if show_prometheus {
        let mut reg = analysis.registry();
        println!("\nprometheus exposition:");
        print!("{}", reg.render_prometheus());
    }

    if let Some(p) = profile {
        println!();
        print!("{}", p.render(10));
    }

    ExitCode::SUCCESS
}
