//! Figure 5-1 "Latency": ATM-perceived credit latency vs final quorum
//! size, measured against the order-statistic prediction.

use relax_bench::experiments::latency::{render, sweep};

fn main() {
    println!("== Latency vs Credit final quorum size (account, n = 5 replicas) ==\n");
    let rows = sweep(5, 200, 0x1A7E);
    println!("{}", render(&rows));
    println!("final quorum 1 = announce after first ack (background propagation,");
    println!("A1 relaxed); final quorum n = fully synchronous (A1 held).");
}
