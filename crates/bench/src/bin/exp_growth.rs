//! Behavior-complexity growth: accepted histories per length, per
//! lattice point.

use relax_bench::experiments::growth::{semiqueue_growth, taxi_growth};

fn main() {
    println!("== Behavior complexity: |L_n| per lattice point ==\n");
    // Bounds deepened from 6 to 8 once language_sizes moved to the
    // subset-graph engine.
    println!("taxi lattice over items {{1,2}} (η vs η′):");
    println!("{}", taxi_growth(&[1, 2], 8));
    println!("semiqueue chain over items {{1,2}}:");
    println!("{}", semiqueue_growth(&[1, 2], 8, 4));
    println!("the gap between rows is the anomaly space each constraint rules out —");
    println!("the complexity the designer weighs against the constraint's cost (§5).");
}
