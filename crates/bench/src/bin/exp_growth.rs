//! Behavior-complexity growth: accepted histories per length, per
//! lattice point.

use relax_bench::experiments::growth::{semiqueue_growth, taxi_growth};

fn main() {
    println!("== Behavior complexity: |L_n| per lattice point ==\n");
    println!("taxi lattice over items {{1,2}} (η vs η′):");
    println!("{}", taxi_growth(&[1, 2], 6));
    println!("semiqueue chain over items {{1,2}}:");
    println!("{}", semiqueue_growth(&[1, 2], 6, 4));
    println!("the gap between rows is the anomaly space each constraint rules out —");
    println!("the complexity the designer weighs against the constraint's cost (§5).");
}
