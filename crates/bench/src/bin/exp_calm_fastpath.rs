//! CALM fast path: coordination-free execution of monotone operations.
//!
//! The monotonicity analyzer classifies the bank account's `Credit`
//! monotone at the `{A2}` lattice level; the scheduling policy then
//! executes credits with no read phase, no quorum wait, and no timer.
//! Sweeps replica counts and workload mixes, comparing monotone-op
//! latency and availability against the all-quorum baseline under
//! identical seeds, with per-row observational-equivalence checks.
//!
//! Results go to `BENCH_calm_fastpath.json`; CI requires
//! `within_target: true` (monotone-op p50 ≥ 5× better than the quorum
//! path, fast-path availability 1.0 under a quorum-blocking partition,
//! every row equivalent).

use relax_bench::experiments::calm::{
    gate_availability, gate_latency_ratio, run, to_json, SWEEP, TARGET_LATENCY_RATIO,
};

fn main() {
    println!("== CALM fast path: coordination-free monotone operations ==\n");
    let (table, rows) = run(SWEEP);
    println!("{table}");

    let ratio = gate_latency_ratio(&rows);
    let availability = gate_availability(&rows);
    let all_equivalent = rows.iter().all(|r| r.equivalent);
    println!(
        "gate: worst monotone-op p50 ratio {ratio:.1}x \
         (target ≥ {TARGET_LATENCY_RATIO:.0}x), \
         fast availability under partition {availability:.2}, \
         all_equivalent={all_equivalent}"
    );

    let json = to_json(&rows);
    std::fs::write("BENCH_calm_fastpath.json", &json).expect("write BENCH_calm_fastpath.json");
    println!("wrote BENCH_calm_fastpath.json");
}
