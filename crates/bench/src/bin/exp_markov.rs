//! §2.3's probabilistic interface: a Markov environment over the taxi
//! lattice, long-run behavior mix.

use relax_bench::experiments::markov::{render, stationary_mix};

fn main() {
    println!("== Markov environment over the taxi lattice (§2.3) ==\n");
    for (p_fail, p_repair) in [(0.05, 0.5), (0.1, 0.5), (0.1, 0.2)] {
        println!("per-step constraint failure {p_fail}, repair {p_repair}:");
        let rows = stationary_mix(p_fail, p_repair);
        let (t, in_order) = render(&rows);
        println!("{t}");
        println!("long-run P(service is never out of order) = {in_order:.4}\n");
    }
    println!("functional behavior (the lattice) and failure statistics (the chain)");
    println!("compose without either model knowing the other's internals.");
}
