//! Sharded wall-clock backend throughput: sweeps shards × batch ×
//! replicas over the taxi-queue and bank-account workloads, with a
//! sim-vs-threaded equivalence probe on every row.
//!
//! Results go to `BENCH_realtime_throughput.json`; CI requires
//! `within_target: true` (best sweep point ≥ 1M ops/sec aggregate with
//! every row observably equivalent to the simulator).

use relax_bench::experiments::realtime::{best, run, to_json, SWEEP, TARGET_OPS_PER_SEC};

fn main() {
    println!("== Sharded wall-clock backend: batched brokers, group commit ==\n");
    let (table, rows) = run(SWEEP);
    println!("{table}");

    let top = best(&rows);
    let all_equivalent = rows.iter().all(|r| r.equivalent);
    println!(
        "gate: {} ({} shards × batch {} × {} replicas) → {:.0} ops/sec \
         (target ≥ {TARGET_OPS_PER_SEC:.0}), p50 {:.1}µs, p99 {:.1}µs, all_equivalent={}",
        top.config.workload.name(),
        top.config.shards,
        top.config.batch,
        top.config.replicas,
        top.ops_per_sec,
        top.p50_nanos as f64 / 1e3,
        top.p99_nanos as f64 / 1e3,
        all_equivalent
    );

    let json = to_json(&rows);
    std::fs::write("BENCH_realtime_throughput.json", &json)
        .expect("write BENCH_realtime_throughput.json");
    println!("wrote BENCH_realtime_throughput.json");
}
