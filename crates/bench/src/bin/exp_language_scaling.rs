//! Old-vs-new language-engine scaling: times the retained naive
//! verification path against the subset-graph engine at increasing
//! bounds and gates on the deepest one (items {1,2,3}, length ≤ 8 —
//! the Theorem-4 bound EXPERIMENTS.md records).
//!
//! Results go to `BENCH_language_scaling.json`; CI requires
//! `within_target: true` (engine ≥ 5× faster than naive at the gate
//! bound, with both paths agreeing on every language size).

use relax_bench::experiments::scaling::{run, to_json, TARGET_SPEEDUP};

fn main() {
    println!("== Language-engine scaling on the taxi-lattice verification ==\n");
    let bounds = [
        (vec![1, 2], 5usize),
        (vec![1, 2, 3], 5),
        (vec![1, 2, 3], 6),
        (vec![1, 2, 3], 7),
        (vec![1, 2, 3], 8),
    ];
    let (table, rows) = run(&bounds);
    println!("{table}");

    let gate = rows.last().expect("bounds nonempty");
    println!(
        "gate: items {:?}, len ≤ {} → {:.2}x (target ≥ {TARGET_SPEEDUP:.0}x, holds={}, agree={})",
        gate.items, gate.max_len, gate.speedup, gate.holds, gate.agree
    );

    let json = to_json(&rows);
    std::fs::write("BENCH_language_scaling.json", &json)
        .expect("write BENCH_language_scaling.json");
    println!("\nwrote BENCH_language_scaling.json");
}
