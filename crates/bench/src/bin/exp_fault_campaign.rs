//! Runs the adversarial fault campaigns and prices the observability
//! layer that watches them.
//!
//! Two halves:
//!
//! * **verdicts** — every named campaign (gray failure, flapping
//!   partition, asymmetric partition, message duplication, combined)
//!   runs fully instrumented; the trace is replayed through the
//!   happens-before analysis and each witnessed transition's minimal
//!   fault cut is checked against the injected fault pattern.
//! * **overhead** — the same deterministic workloads run with the
//!   verification engine alone (degradation monitor + SLO budget clock,
//!   the machinery the campaigns exist to exercise — part of the system
//!   under test) and with the *online* telemetry layered on top
//!   (tracing and staleness sampling), reps in ABBA order, and the
//!   median per-rep ratio prices the telemetry. The offline
//!   happens-before replay behind the verdicts is a post-mortem tool
//!   and is excluded from the gate. Target: ≤ 10% slowdown.
//!
//! Results land in `BENCH_fault_campaign.json`; CI gates on
//! `"within_target":true` (overhead in budget *and* every verdict ok).
//!
//! `--trace NAME PATH` additionally exports the named campaign's full
//! JSONL trace, ready for `trace_analyze PATH --staleness`.

use std::time::Instant;

use relax_bench::experiments::campaign::{
    export_campaign_trace, render, run_all, run_instrumented, run_monitored, CAMPAIGNS,
};

const SEED: u64 = 0xCA11;
const REPS: usize = 101;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--trace") {
        let name = args.get(i + 1).expect("--trace NAME PATH");
        let path = args.get(i + 2).expect("--trace NAME PATH");
        assert!(
            CAMPAIGNS.contains(&name.as_str()),
            "unknown campaign {name}; one of {CAMPAIGNS:?}"
        );
        export_campaign_trace(name, SEED, path).expect("write campaign trace");
        println!("wrote {name} trace to {path}");
    }

    let outcomes = run_all(SEED);
    println!("== Adversarial fault campaigns ==\n");
    print!("{}", render(&outcomes));
    let all_ok = outcomes.iter().all(|o| o.verdict_ok());
    println!(
        "\nverdicts: {}/{} campaigns attributed correctly",
        outcomes.iter().filter(|o| o.verdict_ok()).count(),
        outcomes.len()
    );

    // Warm-up both paths, then interleave baseline and instrumented
    // reps so machine-wide noise hits both equally; gate on the median
    // ratio.
    for c in CAMPAIGNS {
        run_monitored(c, SEED);
        run_instrumented(c, SEED);
    }
    let mut baselines = Vec::with_capacity(REPS);
    let mut enabled = Vec::with_capacity(REPS);
    let time_suite = |f: &dyn Fn(&str, u64), seed: u64| {
        let start = Instant::now();
        for c in CAMPAIGNS {
            f(c, seed);
        }
        start.elapsed().as_nanos()
    };
    let mut ratios: Vec<f64> = (0..REPS)
        .map(|rep| {
            let seed = SEED ^ rep as u64;
            // ABBA order inside each rep so monotone machine drift
            // (thermal, scheduler) cancels instead of biasing one side.
            let b1 = time_suite(&run_monitored, seed);
            let e1 = time_suite(&run_instrumented, seed);
            let e2 = time_suite(&run_instrumented, seed);
            let b2 = time_suite(&run_monitored, seed);
            baselines.push(b1 + b2);
            enabled.push(e1 + e2);
            (e1 + e2) as f64 / (b1 + b2) as f64
        })
        .collect();
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];
    let baseline_ns = *baselines.iter().min().expect("reps > 0");
    let enabled_ns = *enabled.iter().min().expect("reps > 0");
    let overhead_pct = 100.0 * (ratio - 1.0);
    let within_target = overhead_pct <= 10.0 && all_ok;

    println!("\n== Observability overhead on the campaign suite ==\n");
    println!(
        "workload: {} campaigns x {REPS} interleaved reps, median per-rep ratio",
        CAMPAIGNS.len()
    );
    println!("baseline     (monitor + slo)   : {baseline_ns:>12} ns (min rep, 2 suites)");
    println!("instrumented (+trace +stale)   : {enabled_ns:>12} ns (min rep, 2 suites)");
    println!("overhead: {overhead_pct:+.2}%  (target: <= 10%)");

    let campaigns_json: Vec<String> = outcomes
        .iter()
        .map(|o| {
            let classes: Vec<String> = o
                .observed
                .iter()
                .map(|c| format!("\"{}\"", c.as_str()))
                .collect();
            format!(
                "{{\"name\":\"{}\",\"transitions\":{},\"classes\":[{}],\
                 \"duplicated\":{},\"slo_exhausted\":{},\"samples\":{},\
                 \"lag_p50\":{},\"lag_p95\":{},\"lag_max\":{},\"verdict\":{}}}",
                o.name,
                o.transitions,
                classes.join(","),
                o.messages_duplicated,
                o.slo_exhausted,
                o.samples,
                o.lag_p50,
                o.lag_p95,
                o.lag_max,
                o.verdict_ok()
            )
        })
        .collect();
    let json = format!(
        "{{\"bench\":\"fault_campaign\",\"seed\":{SEED},\"reps\":{REPS},\
         \"campaigns\":[{}],\"all_verdicts_ok\":{all_ok},\
         \"baseline_ns\":{baseline_ns},\"enabled_ns\":{enabled_ns},\
         \"overhead_pct\":{overhead_pct:.3},\"target_pct\":10.0,\
         \"within_target\":{within_target}}}\n",
        campaigns_json.join(",")
    );
    std::fs::write("BENCH_fault_campaign.json", &json).expect("write BENCH_fault_campaign.json");
    println!("\nwrote BENCH_fault_campaign.json");
}
