//! Figure 5-1 "Availability": the Q1 quorum trade-off under site
//! failures, analytic vs simulated.

use relax_bench::experiments::availability::{render, sweep};

fn main() {
    println!("== Availability vs quorum assignment (taxi queue, n = 5 sites) ==\n");
    for p_up in [0.95, 0.85, 0.70] {
        println!("site-up probability p = {p_up}: (200 trials each)");
        let rows = sweep(5, p_up, 200, 0x5EED);
        println!("{}", render(&rows));
    }
    println!("shape: shrinking Enq final quorums buys Enq availability at the");
    println!("price of Deq availability (Q1), and Deq quorums stay majorities (Q2).");
}
