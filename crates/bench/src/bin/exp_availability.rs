//! Figure 5-1 "Availability": the Q1 quorum trade-off under site
//! failures, analytic vs simulated.
//!
//! With `--trace [PATH]` the binary additionally runs the §3.3
//! degradation scenario (partitions force the taxi queue from `PQ` down
//! to `MPQ`), writes the structured sim-time trace as JSONL to `PATH`
//! (default `exp_availability_trace.jsonl`), and prints the metrics
//! registry and monitor verdict.

use relax_bench::experiments::availability::{render, sweep};
use relax_bench::experiments::degradation::run_partition_scenario;
use relax_trace::{read_trace, TraceAnalysis};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    println!("== Availability vs quorum assignment (taxi queue, n = 5 sites) ==\n");
    for p_up in [0.95, 0.85, 0.70] {
        println!("site-up probability p = {p_up}: (200 trials each)");
        let rows = sweep(5, p_up, 200, 0x5EED);
        println!("{}", render(&rows));
    }
    println!("shape: shrinking Enq final quorums buys Enq availability at the");
    println!("price of Deq availability (Q1), and Deq quorums stay majorities (Q2).");

    if let Some(ix) = args.iter().position(|a| a == "--trace") {
        let path = args
            .get(ix + 1)
            .cloned()
            .unwrap_or_else(|| "exp_availability_trace.jsonl".into());
        let mut report = run_partition_scenario(0x5EED);
        std::fs::write(&path, &report.trace_jsonl).expect("write trace");
        println!("\n== Degradation scenario (Q1 held, Q2 dropped) ==\n");
        println!(
            "trace: {} events -> {path} (crashes, partitions, quorum \
             assembly/failure, level transitions)",
            report.events.len()
        );
        println!("\nmetrics registry:\n{}", report.registry.summary());
        for t in &report.transitions {
            println!(
                "level transition at op #{}: left {:?}, now {:?}, witness {}",
                t.op_index, t.left, t.now, t.witness
            );
        }
        println!(
            "history of {} completed ops classifies as: {}",
            report.observed_ops.len(),
            report.current_level.as_deref().unwrap_or("(none)")
        );

        // Close the loop: re-ingest the file we just wrote and run the
        // causal analysis over it, exactly as `trace_analyze` would.
        let written = std::fs::read_to_string(&path).expect("re-read trace");
        let parsed = read_trace(&written).expect("re-ingest trace");
        let analysis = TraceAnalysis::from_trace(parsed);
        println!("\n== Causal analysis (re-ingested from {path}) ==\n");
        print!("{}", analysis.report());
    } else {
        println!("\n(pass --trace [PATH] to run the degradation scenario and dump a JSONL trace)");
    }
}
