//! Ablation on the evaluation function: η vs η′ (§3.3's design remark).

use relax_bench::experiments::eta_ablation::{language_size_table, operational_table};

fn main() {
    println!("== Ablation: evaluation function η vs η′ ==\n");
    println!("declarative: bounded language sizes per lattice point (items {{1,2}}, ≤ 4 ops):");
    println!("{}", language_size_table(4));
    println!("operational: same replicated system, same partition (30 seeds):");
    println!("{}", operational_table(30));
    println!("the design choice the paper leaves to the application, quantified:");
    println!("η tolerates out-of-order service but eventually serves everyone;");
    println!("η′ never serves out of order but may ignore skipped requests.");
}
