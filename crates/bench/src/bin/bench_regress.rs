//! CI perf-regression gate: diff fresh `BENCH_*.json` payloads against
//! the committed baselines with per-metric tolerance bands and render
//! one uniform report.
//!
//! ```text
//! bench_regress [--fresh DIR] [--baselines DIR] [--bless]
//! ```
//!
//! * `--fresh DIR` — directory holding the just-produced payloads
//!   (default `.`, where the `exp_*` bins write them).
//! * `--baselines DIR` — directory holding the committed baselines
//!   (default `baselines`).
//! * `--bless` — copy the fresh payloads over the baselines instead of
//!   checking (after an intentional perf change; commit the result).
//!
//! Exits non-zero on any regressed check or unreadable payload.

use std::path::PathBuf;

use relax_bench::experiments::regress::{bless, compare, report};

fn main() {
    let mut fresh = PathBuf::from(".");
    let mut baselines = PathBuf::from("baselines");
    let mut do_bless = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fresh" => fresh = PathBuf::from(args.next().expect("--fresh needs a directory")),
            "--baselines" => {
                baselines = PathBuf::from(args.next().expect("--baselines needs a directory"))
            }
            "--bless" => do_bless = true,
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!("usage: bench_regress [--fresh DIR] [--baselines DIR] [--bless]");
                std::process::exit(2);
            }
        }
    }

    if do_bless {
        match bless(&fresh, &baselines) {
            Ok(files) => {
                println!(
                    "blessed {} baselines into {}:",
                    files.len(),
                    baselines.display()
                );
                for f in files {
                    println!("  {f}");
                }
            }
            Err(e) => {
                eprintln!("bless failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!(
        "== Bench regression gate: {} vs baselines in {} ==\n",
        fresh.display(),
        baselines.display()
    );
    match compare(&fresh, &baselines) {
        Ok(outcomes) => {
            println!("{}", report(&outcomes));
            let failed = outcomes.iter().filter(|o| !o.pass).count();
            if failed > 0 {
                eprintln!("{failed} check(s) REGRESSED");
                std::process::exit(1);
            }
            println!("all {} checks OK", outcomes.len());
        }
        Err(e) => {
            eprintln!("regression check failed: {e}");
            std::process::exit(1);
        }
    }
}
