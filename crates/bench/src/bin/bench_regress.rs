//! CI perf-regression gate: diff fresh `BENCH_*.json` payloads against
//! the committed baselines with per-metric tolerance bands and render
//! one uniform report.
//!
//! ```text
//! bench_regress [--fresh DIR] [--baselines DIR] [--only SUBSTR] [--bless] [--list]
//! ```
//!
//! * `--fresh DIR` — directory holding the just-produced payloads
//!   (default `.`, where the `exp_*` bins write them).
//! * `--baselines DIR` — directory holding the committed baselines
//!   (default `baselines`).
//! * `--only SUBSTR` — run only the checks whose payload file or
//!   metric name contains `SUBSTR` (e.g. `--only merkle` after
//!   rerunning just `exp_merkle_antientropy`). A filter that matches
//!   nothing is an error, not a vacuous pass.
//! * `--bless` — copy the fresh payloads over the baselines instead of
//!   checking (after an intentional perf change; commit the result).
//! * `--list` — print every registered check and exit.
//!
//! Exits non-zero on any regressed check or unreadable payload.

use std::path::PathBuf;

use relax_bench::experiments::regress::{bless, compare_checks, report, selected, CHECKS};

fn main() {
    let mut fresh = PathBuf::from(".");
    let mut baselines = PathBuf::from("baselines");
    let mut only: Option<String> = None;
    let mut do_bless = false;
    let mut do_list = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fresh" => fresh = PathBuf::from(args.next().expect("--fresh needs a directory")),
            "--baselines" => {
                baselines = PathBuf::from(args.next().expect("--baselines needs a directory"))
            }
            "--only" => only = Some(args.next().expect("--only needs a substring")),
            "--bless" => do_bless = true,
            "--list" => do_list = true,
            other => {
                eprintln!("unknown argument {other:?}");
                eprintln!(
                    "usage: bench_regress [--fresh DIR] [--baselines DIR] \
                     [--only SUBSTR] [--bless] [--list]"
                );
                std::process::exit(2);
            }
        }
    }

    if do_list {
        let checks = selected(only.as_deref());
        println!(
            "{} of {} registered checks{}:",
            checks.len(),
            CHECKS.len(),
            match &only {
                Some(o) => format!(" matching {o:?}"),
                None => String::new(),
            }
        );
        for c in &checks {
            println!("  {} :: {} ({:?})", c.file, c.metric, c.band);
        }
        return;
    }

    if do_bless {
        if only.is_some() {
            eprintln!("--bless does not combine with --only: baselines are blessed as a set");
            std::process::exit(2);
        }
        match bless(&fresh, &baselines) {
            Ok(files) => {
                println!(
                    "blessed {} baselines into {}:",
                    files.len(),
                    baselines.display()
                );
                for f in files {
                    println!("  {f}");
                }
            }
            Err(e) => {
                eprintln!("bless failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!(
        "== Bench regression gate: {} vs baselines in {} ==\n",
        fresh.display(),
        baselines.display()
    );
    match compare_checks(&selected(only.as_deref()), &fresh, &baselines) {
        Ok(outcomes) => {
            println!("{}", report(&outcomes));
            let failed = outcomes.iter().filter(|o| !o.pass).count();
            if failed > 0 {
                eprintln!("{failed} check(s) REGRESSED");
                std::process::exit(1);
            }
            println!("all {} checks OK", outcomes.len());
        }
        Err(e) => {
            eprintln!("regression check failed: {e}");
            std::process::exit(1);
        }
    }
}
