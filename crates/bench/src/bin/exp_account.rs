//! §3.4 operational experiments: premature debits decay over time; the
//! no-overdraft invariant survives A1 relaxation.

use relax_bench::experiments::account::{
    overdraft_invariant, premature_debit_decay, premature_debit_decay_with_gossip, render_decay,
};

fn main() {
    println!("== §3.4: replicated ATM account (A1 relaxed, A2 held) ==\n");
    println!("spurious bounce rate vs credit→debit gap (3 replicas, delays 1–20):");
    let rows = premature_debit_decay(&[0, 5, 10, 20, 40, 60], 200, 3);
    println!("{}", render_decay(&rows));

    println!("same sweep with replica anti-entropy (gossip every 5 ticks):");
    let rows = premature_debit_decay_with_gossip(&[0, 5, 10, 20], 200, 3, Some(5));
    println!("{}", render_decay(&rows));

    let (overdrafts, spurious, runs) = overdraft_invariant(200, 3);
    println!("invariant sweep over {runs} runs (credit 10, two debits of 6):");
    println!("  true overdrafts: {overdrafts}   (A2 ⇒ must be 0)");
    println!("  bounces (spurious + legitimate): {spurious}  (tolerated degradation)");
}
