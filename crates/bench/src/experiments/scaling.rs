//! Old-vs-new language-engine scaling on the taxi-lattice verification.
//!
//! Times [`verify_taxi_lattice_naive`] (the retained pre-engine path:
//! two-pass naive `equal_upto` plus a full language enumeration per
//! point) against [`verify_taxi_lattice_perpoint`] (one
//! product-subset-graph walk per point — the engine this experiment has
//! always measured; the newer shared-walk path is benchmarked separately
//! by `exp_symmetry_scaling`) at increasing bounds, recording
//! wall-clock time and the
//! peak working-set width of each — histories in the widest naive
//! frontier vs nodes in the widest product level.
//!
//! The deepest bound is the CI gate: the engine must verify it at least
//! [`TARGET_SPEEDUP`]× faster than the naive path.

use std::time::Instant;

use relax_core::theorem4::verify_taxi_lattice_naive;

use crate::experiments::profile::profiled_perpoint;
use crate::table::Table;

/// The gate: engine speedup over naive required at the deepest bound.
pub const TARGET_SPEEDUP: f64 = 5.0;

/// One measured bound.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// The item alphabet used.
    pub items: Vec<i64>,
    /// The history-length bound.
    pub max_len: usize,
    /// Naive-path wall time.
    pub naive_ns: u128,
    /// Engine wall time.
    pub engine_ns: u128,
    /// `naive_ns / engine_ns`.
    pub speedup: f64,
    /// Widest naive frontier, in histories.
    pub naive_peak_frontier: usize,
    /// Widest engine product level, in nodes.
    pub engine_peak_frontier: usize,
    /// Did both paths verify every lattice point?
    pub holds: bool,
    /// Did both paths report identical language sizes?
    pub agree: bool,
}

/// Measures one bound with both paths. The naive side keeps its
/// hand-rolled `Instant` (it is not instrumented); the engine side is
/// timed by the flight recorder — `engine_ns` is the `theorem4` root
/// span's total, so the same clock that feeds `trace_analyze --profile`
/// feeds this table.
pub fn measure(items: &[i64], max_len: usize) -> ScalingRow {
    let start = Instant::now();
    let naive = verify_taxi_lattice_naive(items, max_len);
    let naive_ns = start.elapsed().as_nanos();

    let engine_run = profiled_perpoint(items, max_len);
    let engine_ns = engine_run.wall_ns();
    let engine = engine_run.result;

    let agree = naive
        .points
        .iter()
        .zip(&engine.points)
        .all(|(n, e)| n.language_size == e.language_size && n.holds() == e.holds());
    ScalingRow {
        items: items.to_vec(),
        max_len,
        naive_ns,
        engine_ns,
        speedup: naive_ns as f64 / engine_ns.max(1) as f64,
        naive_peak_frontier: naive.peak_frontier(),
        engine_peak_frontier: engine.peak_frontier(),
        holds: naive.holds() && engine.holds(),
        agree,
    }
}

/// Measures every bound and renders the comparison table. The last bound
/// is the gate row.
pub fn run(bounds: &[(Vec<i64>, usize)]) -> (Table, Vec<ScalingRow>) {
    let rows: Vec<ScalingRow> = bounds
        .iter()
        .map(|(items, max_len)| measure(items, *max_len))
        .collect();
    let mut t = Table::new([
        "items",
        "len ≤",
        "naive (ms)",
        "engine (ms)",
        "speedup",
        "naive peak (hist)",
        "engine peak (nodes)",
        "verdict",
    ]);
    for r in &rows {
        t.row([
            format!("{:?}", r.items),
            r.max_len.to_string(),
            format!("{:.1}", r.naive_ns as f64 / 1e6),
            format!("{:.1}", r.engine_ns as f64 / 1e6),
            format!("{:.2}x", r.speedup),
            r.naive_peak_frontier.to_string(),
            r.engine_peak_frontier.to_string(),
            if r.holds && r.agree {
                "OK".to_string()
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }
    (t, rows)
}

/// Renders the rows as the `BENCH_language_scaling.json` payload; the
/// last row carries the gate.
pub fn to_json(rows: &[ScalingRow]) -> String {
    let gate = rows.last().expect("at least one bound");
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"items\":{},\"max_len\":{},\"naive_ns\":{},\"engine_ns\":{},\
                 \"speedup\":{:.3},\"naive_peak_frontier\":{},\
                 \"engine_peak_frontier\":{},\"holds\":{},\"agree\":{}}}",
                r.items.len(),
                r.max_len,
                r.naive_ns,
                r.engine_ns,
                r.speedup,
                r.naive_peak_frontier,
                r.engine_peak_frontier,
                r.holds,
                r.agree
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"language_scaling\",\"workload\":\"taxi_lattice_verification\",\
         \"rows\":[{}],\
         \"gate_items\":{},\"gate_max_len\":{},\"gate_speedup\":{:.3},\
         \"target_speedup\":{TARGET_SPEEDUP:.1},\"within_target\":{}}}\n",
        row_json.join(","),
        gate.items.len(),
        gate.max_len,
        gate.speedup,
        gate.speedup >= TARGET_SPEEDUP && gate.holds && gate.agree
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_agrees_at_small_bounds() {
        let row = measure(&[1, 2], 3);
        assert!(row.holds);
        assert!(row.agree);
        assert!(row.naive_peak_frontier > 0);
        assert!(row.engine_peak_frontier > 0);
        // Hash-consing keeps the product level narrower than the naive
        // per-history frontier even at tiny bounds.
        assert!(row.engine_peak_frontier <= row.naive_peak_frontier);
    }

    #[test]
    fn json_payload_carries_the_gate() {
        let (_, rows) = run(&[(vec![1, 2], 2), (vec![1, 2], 3)]);
        let json = to_json(&rows);
        assert!(json.contains("\"bench\":\"language_scaling\""));
        assert!(json.contains("\"gate_max_len\":3"));
        assert!(json.contains("\"within_target\":"));
    }
}
