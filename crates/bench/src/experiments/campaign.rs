//! Adversarial fault campaigns with machine-checked root-cause verdicts.
//!
//! Each named campaign drives the replicated taxi queue through one
//! fault pattern the observability layer must attribute correctly:
//!
//! * `gray_failure` — a replica turns slow-but-alive; nothing is ever
//!   dropped, yet a stale read degrades the queue. The fault cut must
//!   contain the `gray_degraded` event (and nothing else).
//! * `flapping_partition` — a partition installs, heals, and re-installs
//!   on the other side of the system; both `partition_set` events reach
//!   the cut.
//! * `asymmetric_partition` — directed links from the client are blocked
//!   while the reverse directions keep working; the cut is all
//!   `link_blocked`.
//! * `message_duplication` — the network duplicates half of all
//!   messages; idempotent log merges mask the fault completely, so the
//!   verdict is *zero* transitions despite a positive duplicate count.
//! * `combined` — flapping partitions on a gray-degraded, duplicating
//!   network; the cut must name both the partition and the gray failure.
//!
//! A verdict is *machine-checked*: the trace is replayed through the
//! happens-before analysis, the minimal fault cut of every witnessed
//! transition is classified, and the observed fault classes are compared
//! against what the campaign injected (required ⊆ observed ⊆ allowed).
//! Every degrading campaign also arms a degradation SLO (`PQ` may spend
//! at most 100 ticks dead) and checks the budget-exhaustion event fires.
//!
//! Staleness is sampled every 20 ticks throughout (the scrape interval,
//! twice the submission grid); per-campaign lag quantiles come from the
//! recorded `replica_lag_sampled` events.

use relax_quorum::relation::QueueKind;
use relax_quorum::runtime::{QueueInv, TaxiQueueType};
use relax_quorum::{queue_lattice_monitor, ClientConfig, QuorumSystem, VotingAssignment};
use relax_sim::{Fault, FaultSchedule, NetworkConfig, NodeId, Partition, SimTime};
use relax_trace::{EventKind, Histogram, SloMonitor, TraceAnalysis};

use crate::table::Table;

/// The class of an injected fault, as attributed by the root-cause
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultClass {
    /// A `node_crashed` in the cut.
    Crash,
    /// A `partition_set` in the cut.
    Partition,
    /// A `loss_rate_set` in the cut.
    Loss,
    /// A `gray_degraded` in the cut.
    Gray,
    /// A `link_blocked` in the cut.
    LinkBlock,
    /// A `duplication_rate_set` in the cut.
    Duplication,
}

impl FaultClass {
    /// Short lowercase name (used in the JSON artifact).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::Crash => "crash",
            FaultClass::Partition => "partition",
            FaultClass::Loss => "loss",
            FaultClass::Gray => "gray",
            FaultClass::LinkBlock => "link_block",
            FaultClass::Duplication => "duplication",
        }
    }
}

/// Classifies a fault-cut member; `None` for kinds that never appear in
/// cuts.
#[must_use]
pub fn classify(kind: &EventKind) -> Option<FaultClass> {
    match kind {
        EventKind::NodeCrashed { .. } => Some(FaultClass::Crash),
        EventKind::PartitionSet { .. } => Some(FaultClass::Partition),
        EventKind::LossRateSet { .. } => Some(FaultClass::Loss),
        EventKind::GrayDegraded { .. } => Some(FaultClass::Gray),
        EventKind::LinkBlocked { .. } => Some(FaultClass::LinkBlock),
        EventKind::DuplicationRateSet { .. } => Some(FaultClass::Duplication),
        _ => None,
    }
}

/// One campaign's machine-checked outcome.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Campaign name.
    pub name: &'static str,
    /// Level transitions the monitor witnessed.
    pub transitions: usize,
    /// Fault classes found across all transition cuts (sorted, unique).
    pub observed: Vec<FaultClass>,
    /// Classes the campaign's cuts must contain.
    pub required: Vec<FaultClass>,
    /// Classes the cuts may contain (superset of `required`).
    pub allowed: Vec<FaultClass>,
    /// `true` when the injected fault must be *masked*: no transitions
    /// expected even though the fault demonstrably fired.
    pub expect_masked: bool,
    /// Messages the network duplicated during the run.
    pub messages_duplicated: u64,
    /// Whether the `PQ` error budget exhausted (degrading campaigns
    /// expect `true`).
    pub slo_exhausted: bool,
    /// Staleness samples taken.
    pub samples: u64,
    /// Median per-sample replica lag, in entries.
    pub lag_p50: u64,
    /// 95th-percentile replica lag, in entries.
    pub lag_p95: u64,
    /// Maximum replica lag, in entries.
    pub lag_max: u64,
}

impl CampaignOutcome {
    /// The machine-checked verdict: the root-cause engine attributed the
    /// degradation to exactly the injected fault pattern (or, for a
    /// masked campaign, correctly stayed silent while the fault fired).
    #[must_use]
    pub fn verdict_ok(&self) -> bool {
        if self.expect_masked {
            return self.transitions == 0
                && self.observed.is_empty()
                && self.messages_duplicated > 0;
        }
        self.transitions >= 1
            && self.slo_exhausted
            && self.required.iter().all(|c| self.observed.contains(c))
            && self.observed.iter().all(|c| self.allowed.contains(c))
    }
}

/// A campaign recipe: the fault schedule, the timed workload, and the
/// attribution the root-cause engine must produce.
struct Recipe {
    name: &'static str,
    schedule: FaultSchedule,
    /// `(time, invocation)` pairs; times are multiples of the sampling
    /// cadence so submission lands exactly on a sampling boundary.
    submissions: Vec<(u64, QueueInv)>,
    required: Vec<FaultClass>,
    allowed: Vec<FaultClass>,
    expect_masked: bool,
    horizon: u64,
}

/// The five campaign names, in canonical order.
pub const CAMPAIGNS: [&str; 5] = [
    "gray_failure",
    "flapping_partition",
    "asymmetric_partition",
    "message_duplication",
    "combined",
];

const SAMPLE_EVERY: u64 = 10;
const SCRAPE_EVERY: u64 = 2 * SAMPLE_EVERY;
const PQ_BUDGET: u64 = 100;

/// Heartbeat traffic after the interesting prefix of a campaign: an
/// `Enq(k)`/`Deq` pair per two sampling boundaries. It keeps the event
/// loop (and so the SLO clock) ticking, and it makes the workload
/// *sustained* — the overhead gate prices observability against a
/// system doing real work, not an idle tail. Heartbeat priorities
/// (100+) dominate every prefix value, so dequeuing the fresh entry is
/// legal at every lattice level even while stale prefix entries linger
/// in unreachable replicas: heartbeats never add transitions, and the
/// monitor's pending-bag states stay small.
fn with_heartbeats(mut submissions: Vec<(u64, QueueInv)>, horizon: u64) -> Vec<(u64, QueueInv)> {
    let mut t = 100;
    let mut k = 100;
    while t + SAMPLE_EVERY < horizon {
        submissions.push((t, QueueInv::Enq(k)));
        submissions.push((t + SAMPLE_EVERY, QueueInv::Deq));
        t += 2 * SAMPLE_EVERY;
        k += 1;
    }
    submissions
}

fn recipe(name: &str) -> Recipe {
    let client = NodeId(3);
    match name {
        // A healthy write, then replica 0 turns gray (60× slower): the
        // next write's copy to r0 crawls, so after r0 recovers, a Deq
        // reading r0 first sees a stale view and serves 5 over the
        // pending 9. No message is ever dropped.
        "gray_failure" => Recipe {
            name: "gray_failure",
            schedule: FaultSchedule::new()
                .at(SimTime(20), Fault::GrayDegrade(NodeId(0), 60))
                .at(SimTime(50), Fault::GrayRestore(NodeId(0))),
            submissions: with_heartbeats(
                vec![
                    (0, QueueInv::Enq(5)),
                    (30, QueueInv::Enq(9)),
                    (60, QueueInv::Deq),
                ],
                600,
            ),
            required: vec![FaultClass::Gray],
            allowed: vec![FaultClass::Gray],
            expect_masked: false,
            horizon: 600,
        },
        // The partition flips sides: first it isolates {client, r2} (so
        // Enq(9) lands only at r2), then — after a brief heal — it
        // isolates r2, so the Deq reads a replica that never saw 9.
        // Both partition_set events must reach the cut.
        "flapping_partition" => Recipe {
            name: "flapping_partition",
            schedule: FaultSchedule::new()
                .at(
                    SimTime(30),
                    Fault::Partition(Partition::groups(vec![
                        vec![client, NodeId(2)],
                        vec![NodeId(0), NodeId(1)],
                    ])),
                )
                .at(SimTime(60), Fault::Heal)
                .at(
                    SimTime(70),
                    Fault::Partition(Partition::groups(vec![
                        vec![client, NodeId(0), NodeId(1)],
                        vec![NodeId(2)],
                    ])),
                ),
            submissions: with_heartbeats(
                vec![
                    (0, QueueInv::Enq(5)),
                    (40, QueueInv::Enq(9)),
                    (80, QueueInv::Deq),
                ],
                600,
            ),
            required: vec![FaultClass::Partition],
            allowed: vec![FaultClass::Partition],
            expect_masked: false,
            horizon: 600,
        },
        // Directed blocks only — every reverse link keeps working.
        // First the client cannot reach r1/r2 (Enq(9) lands only at
        // r0), then only r0 is unreachable (the Deq reads stale r1).
        "asymmetric_partition" => Recipe {
            name: "asymmetric_partition",
            schedule: FaultSchedule::new()
                .at(SimTime(30), Fault::BlockLink(client, NodeId(1)))
                .at(SimTime(30), Fault::BlockLink(client, NodeId(2)))
                .at(SimTime(60), Fault::UnblockLink(client, NodeId(1)))
                .at(SimTime(60), Fault::UnblockLink(client, NodeId(2)))
                .at(SimTime(60), Fault::BlockLink(client, NodeId(0))),
            submissions: with_heartbeats(
                vec![
                    (0, QueueInv::Enq(5)),
                    (40, QueueInv::Enq(9)),
                    (70, QueueInv::Deq),
                ],
                600,
            ),
            required: vec![FaultClass::LinkBlock],
            allowed: vec![FaultClass::LinkBlock],
            expect_masked: false,
            horizon: 600,
        },
        // Half of all messages are duplicated, but log merges are
        // idempotent: the protocol masks the fault completely. The
        // verdict demands zero transitions *and* a positive duplicate
        // count — silence must be earned, not accidental.
        "message_duplication" => Recipe {
            name: "message_duplication",
            schedule: FaultSchedule::new().at(SimTime(0), Fault::SetDuplication(0.5)),
            submissions: with_heartbeats(
                vec![
                    (0, QueueInv::Enq(5)),
                    (20, QueueInv::Enq(9)),
                    (40, QueueInv::Deq),
                    (60, QueueInv::Deq),
                ],
                600,
            ),
            required: vec![],
            allowed: vec![],
            expect_masked: true,
            horizon: 600,
        },
        // Flapping partitions on a network that is also gray-degraded at
        // r0 and duplicating 30% of messages. The cut must name both the
        // partition and the gray failure; duplication may (or may not)
        // be tangled into the causal past.
        "combined" => Recipe {
            name: "combined",
            schedule: FaultSchedule::new()
                .at(SimTime(0), Fault::GrayDegrade(NodeId(0), 2))
                .at(SimTime(0), Fault::SetDuplication(0.3))
                .at(
                    SimTime(30),
                    Fault::Partition(Partition::groups(vec![
                        vec![client, NodeId(2)],
                        vec![NodeId(0), NodeId(1)],
                    ])),
                )
                .at(SimTime(60), Fault::Heal)
                .at(
                    SimTime(70),
                    Fault::Partition(Partition::groups(vec![
                        vec![client, NodeId(0), NodeId(1)],
                        vec![NodeId(2)],
                    ])),
                ),
            submissions: with_heartbeats(
                vec![
                    (0, QueueInv::Enq(5)),
                    (40, QueueInv::Enq(9)),
                    (80, QueueInv::Deq),
                ],
                600,
            ),
            required: vec![FaultClass::Partition, FaultClass::Gray],
            allowed: vec![
                FaultClass::Partition,
                FaultClass::Gray,
                FaultClass::Duplication,
            ],
            expect_masked: false,
            horizon: 600,
        },
        other => panic!("unknown campaign {other:?}"),
    }
}

/// Quorums of one on both phases: reads hit the first responder, writes
/// commit at any single replica — the most degradation-prone point of
/// the lattice, ideal for observing faults.
fn campaign_assignment() -> VotingAssignment<QueueKind> {
    VotingAssignment::new(3)
        .with_initial(QueueKind::Enq, 0)
        .with_final(QueueKind::Enq, 1)
        .with_initial(QueueKind::Deq, 1)
        .with_final(QueueKind::Deq, 1)
}

/// How much of the observability stack a campaign run carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    /// Nothing attached: the perturbation baseline.
    Bare,
    /// Degradation monitor plus the SLO budget clock. Together they are
    /// the runtime-verification engine whose verdicts the campaigns
    /// exist to check — part of the system under test, so they form the
    /// *baseline* of the overhead gate, not the layer being priced.
    Monitored,
    /// The verification engine plus the telemetry this gate prices:
    /// tracing and staleness sampling.
    Full,
}

/// Builds the campaign system. Fixed 5-tick delays make every run
/// deterministic: equal-delay responses tie-break by send order, so the
/// client's quorum-of-one read always sees replica 0 first.
fn campaign_system(seed: u64, tier: Tier) -> QuorumSystem<TaxiQueueType> {
    let mut sys = QuorumSystem::new(
        TaxiQueueType,
        3,
        campaign_assignment(),
        ClientConfig::default(),
        NetworkConfig::new(5, 5, 0.0),
        seed,
    );
    if tier != Tier::Bare {
        sys = sys
            .with_monitor(queue_lattice_monitor())
            .with_slo(SloMonitor::new().budget("PQ", PQ_BUDGET));
    }
    if tier == Tier::Full {
        sys = sys.with_trace(8192).with_staleness();
        // A campaign emits ~1-2k events; skip the tracer's
        // growth-realloc chain instead of paying it on every rep.
        sys.world_mut().tracer_mut().reserve_events(2048);
    }
    sys
}

/// Drives one recipe to its horizon, stepping on the [`SAMPLE_EVERY`]
/// submission grid and sampling staleness every [`SCRAPE_EVERY`] ticks
/// (a no-op unless the tier attached a tracker).
fn drive(recipe: &Recipe, seed: u64, tier: Tier) -> QuorumSystem<TaxiQueueType> {
    let mut sys = campaign_system(seed, tier);
    sys.world_mut().set_schedule(recipe.schedule.clone());
    let mut t = 0u64;
    loop {
        for &(at, inv) in &recipe.submissions {
            if at == t {
                sys.submit(inv);
            }
        }
        if t >= recipe.horizon {
            break;
        }
        t += SAMPLE_EVERY;
        sys.run_until(SimTime(t));
        if t.is_multiple_of(SCRAPE_EVERY) {
            sys.sample_staleness();
        }
    }
    sys
}

/// Runs one campaign with nothing attached at all (no monitor, no
/// telemetry) — used to check that observability does not perturb the
/// simulation.
pub fn run_bare(name: &str, seed: u64) {
    let r = recipe(name);
    let sys = drive(&r, seed, Tier::Bare);
    std::hint::black_box(sys.outcomes().len());
}

/// Runs one campaign with the degradation monitor and SLO clock but no
/// telemetry — the baseline of the overhead gate. Monitor and SLO clock
/// are the verification engine the campaigns exist to exercise (part of
/// the system under test); the gate prices the *telemetry* layered on
/// top of them.
pub fn run_monitored(name: &str, seed: u64) {
    let r = recipe(name);
    let sys = drive(&r, seed, Tier::Monitored);
    std::hint::black_box(sys.outcomes().len());
}

/// Runs one campaign with the full *online* observability stack
/// (verification engine plus tracing and staleness sampling) but no
/// offline analysis — the enabled side of the overhead gate. The
/// happens-before replay behind the verdicts is a post-mortem tool, not
/// a runtime cost, so it is priced out of the gate.
pub fn run_instrumented(name: &str, seed: u64) {
    let r = recipe(name);
    let sys = drive(&r, seed, Tier::Full);
    std::hint::black_box(sys.outcomes().len());
}

/// Runs one named campaign fully instrumented and returns its
/// machine-checked outcome.
#[must_use]
pub fn run_campaign(name: &str, seed: u64) -> CampaignOutcome {
    let r = recipe(name);
    let mut sys = drive(&r, seed, Tier::Full);
    sys.export_metrics();

    // Staleness quantiles from the recorded lag samples.
    let mut lags = Histogram::new();
    for e in sys.world().tracer().events() {
        if let EventKind::ReplicaLagSampled { entries_behind, .. } = e.kind {
            lags.record(entries_behind);
        }
    }

    // Replay the trace through the happens-before analysis and classify
    // every transition's minimal fault cut.
    let analysis = TraceAnalysis::from_events(sys.world().tracer().events().collect());
    let mut observed: Vec<FaultClass> = Vec::new();
    for rc in analysis.root_causes() {
        for &ix in &rc.fault_cut {
            if let Some(c) = classify(&analysis.graph().events()[ix].kind) {
                if !observed.contains(&c) {
                    observed.push(c);
                }
            }
        }
    }
    observed.sort_unstable();

    CampaignOutcome {
        name: r.name,
        transitions: analysis.root_causes().len(),
        observed,
        required: r.required,
        allowed: r.allowed,
        expect_masked: r.expect_masked,
        messages_duplicated: sys.world().messages_duplicated(),
        slo_exhausted: sys.slo().is_some_and(|s| s.exhausted("PQ")),
        samples: sys.staleness().map_or(0, |t| t.samples()),
        lag_p50: lags.p50().unwrap_or(0),
        lag_p95: lags.p95().unwrap_or(0),
        lag_max: lags.max().unwrap_or(0),
    }
}

/// Runs every campaign with the same seed.
#[must_use]
pub fn run_all(seed: u64) -> Vec<CampaignOutcome> {
    CAMPAIGNS.iter().map(|c| run_campaign(c, seed)).collect()
}

/// Runs one named campaign fully instrumented and writes its headered
/// JSONL trace to `path` — the export side of `trace_analyze
/// --staleness` (lag timeline, divergence, SLO exhaustion all come
/// from the recorded events).
pub fn export_campaign_trace(
    name: &str,
    seed: u64,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    let r = recipe(name);
    let sys = drive(&r, seed, Tier::Full);
    sys.world().tracer().write_jsonl(path)
}

/// Renders campaign outcomes as a table.
#[must_use]
pub fn render(outcomes: &[CampaignOutcome]) -> Table {
    let mut t = Table::new([
        "campaign",
        "transitions",
        "cut classes",
        "duplicated",
        "SLO spent",
        "lag p50/p95/max",
        "verdict",
    ]);
    for o in outcomes {
        let classes = if o.observed.is_empty() {
            "-".to_string()
        } else {
            o.observed
                .iter()
                .map(|c| c.as_str())
                .collect::<Vec<_>>()
                .join("+")
        };
        t.row([
            o.name.to_string(),
            o.transitions.to_string(),
            classes,
            o.messages_duplicated.to_string(),
            if o.slo_exhausted { "exhausted" } else { "-" }.to_string(),
            format!("{}/{}/{}", o.lag_p50, o.lag_p95, o.lag_max),
            if o.verdict_ok() { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: u64 = 0xCA11;

    #[test]
    fn gray_failure_is_attributed_without_any_drops() {
        let o = run_campaign("gray_failure", SEED);
        assert!(o.verdict_ok(), "{o:?}");
        assert_eq!(o.observed, vec![FaultClass::Gray]);
        assert!(o.transitions >= 1);
        assert!(o.slo_exhausted);
    }

    #[test]
    fn flapping_partition_cut_is_partitions_only() {
        let o = run_campaign("flapping_partition", SEED);
        assert!(o.verdict_ok(), "{o:?}");
        assert_eq!(o.observed, vec![FaultClass::Partition]);
    }

    #[test]
    fn asymmetric_partition_cut_is_link_blocks_only() {
        let o = run_campaign("asymmetric_partition", SEED);
        assert!(o.verdict_ok(), "{o:?}");
        assert_eq!(o.observed, vec![FaultClass::LinkBlock]);
    }

    #[test]
    fn duplication_is_masked_but_witnessed() {
        let o = run_campaign("message_duplication", SEED);
        assert!(o.verdict_ok(), "{o:?}");
        assert_eq!(o.transitions, 0);
        assert!(o.messages_duplicated > 0);
    }

    #[test]
    fn combined_campaign_names_both_fault_classes() {
        let o = run_campaign("combined", SEED);
        assert!(o.verdict_ok(), "{o:?}");
        assert!(o.observed.contains(&FaultClass::Partition), "{o:?}");
        assert!(o.observed.contains(&FaultClass::Gray), "{o:?}");
    }

    #[test]
    fn campaigns_sample_staleness_throughout() {
        let o = run_campaign("flapping_partition", SEED);
        assert_eq!(o.samples, 30);
        // Replica 2 holds Enq(9) alone for most of the run: lag shows.
        assert!(o.lag_max >= 1, "{o:?}");
    }

    #[test]
    fn bare_runs_match_instrumented_outcomes() {
        // The uninstrumented baseline runs the same deterministic
        // workload (observability must not perturb the system).
        for name in CAMPAIGNS {
            let r = recipe(name);
            let bare = drive(&r, SEED, Tier::Bare);
            let inst = drive(&r, SEED, Tier::Full);
            assert_eq!(
                bare.outcomes(),
                inst.outcomes(),
                "observability perturbed campaign {name}"
            );
        }
    }
}
