//! Uniform benchmark regression gating: diff fresh `BENCH_*.json`
//! payloads against the committed baselines in `baselines/` with
//! per-metric tolerance bands, and render one report instead of a
//! per-bench pile of `grep '"within_target":true'` CI steps.
//!
//! Band semantics are asymmetric on purpose — only *regressions* fail:
//!
//! * [`Band::MinRatio`] guards speedup-style metrics: the fresh value
//!   must be at least `baseline × ratio`. Getting faster never fails.
//! * [`Band::MaxAbsDelta`] guards overhead-percent metrics: the fresh
//!   value may exceed the baseline by at most `delta` points. Getting
//!   cheaper never fails.
//! * [`Band::MustBeTrue`] pins boolean gate verdicts regardless of the
//!   baseline.
//!
//! The wide ratio/delta bands absorb machine-to-machine noise (CI
//! runners are not the machine the baselines were recorded on); the
//! boolean gates stay strict because each bench already self-judges
//! against its own same-machine target.

use std::path::Path;

use relax_trace::codec::{report_fields, ReportValue};

use crate::table::Table;

/// A tolerance band for one metric.
#[derive(Debug, Clone, Copy)]
pub enum Band {
    /// Fresh numeric value must be ≥ `baseline × ratio`.
    MinRatio(f64),
    /// Fresh numeric value must be ≤ `baseline + delta`.
    MaxAbsDelta(f64),
    /// Fresh boolean value must be `true` (baseline must agree).
    MustBeTrue,
}

impl Band {
    fn describe(&self) -> String {
        match self {
            Band::MinRatio(r) => format!("≥ {r:.2}× base"),
            Band::MaxAbsDelta(d) => format!("≤ base {d:+.1}"),
            Band::MustBeTrue => "must be true".to_string(),
        }
    }
}

/// One gated metric of one benchmark payload.
#[derive(Debug, Clone, Copy)]
pub struct Check {
    /// The payload file name (same in both directories).
    pub file: &'static str,
    /// Top-level metric name inside the payload.
    pub metric: &'static str,
    /// The tolerance band.
    pub band: Band,
}

/// Every gated metric across the workspace's benchmark payloads.
pub const CHECKS: &[Check] = &[
    Check {
        file: "BENCH_language_scaling.json",
        metric: "gate_speedup",
        band: Band::MinRatio(0.4),
    },
    Check {
        file: "BENCH_language_scaling.json",
        metric: "within_target",
        band: Band::MustBeTrue,
    },
    Check {
        file: "BENCH_symmetry_scaling.json",
        metric: "gate_speedup",
        band: Band::MinRatio(0.4),
    },
    Check {
        file: "BENCH_symmetry_scaling.json",
        metric: "within_target",
        band: Band::MustBeTrue,
    },
    Check {
        file: "BENCH_runtime_throughput.json",
        metric: "gate_speedup",
        band: Band::MinRatio(0.4),
    },
    Check {
        file: "BENCH_runtime_throughput.json",
        metric: "gate_bytes_ratio",
        band: Band::MinRatio(0.5),
    },
    Check {
        file: "BENCH_runtime_throughput.json",
        metric: "within_target",
        band: Band::MustBeTrue,
    },
    Check {
        file: "BENCH_trace_overhead.json",
        metric: "overhead_pct",
        band: Band::MaxAbsDelta(3.0),
    },
    Check {
        file: "BENCH_trace_overhead.json",
        metric: "within_target",
        band: Band::MustBeTrue,
    },
    Check {
        file: "BENCH_fault_campaign.json",
        metric: "overhead_pct",
        band: Band::MaxAbsDelta(4.0),
    },
    Check {
        file: "BENCH_fault_campaign.json",
        metric: "all_verdicts_ok",
        band: Band::MustBeTrue,
    },
    Check {
        file: "BENCH_fault_campaign.json",
        metric: "within_target",
        band: Band::MustBeTrue,
    },
    Check {
        file: "BENCH_profile_overhead.json",
        metric: "overhead_pct",
        band: Band::MaxAbsDelta(3.0),
    },
    Check {
        file: "BENCH_profile_overhead.json",
        metric: "exact_attribution",
        band: Band::MustBeTrue,
    },
    Check {
        file: "BENCH_profile_overhead.json",
        metric: "within_target",
        band: Band::MustBeTrue,
    },
    Check {
        file: "BENCH_merkle_antientropy.json",
        metric: "gate_bytes_ratio",
        band: Band::MinRatio(0.5),
    },
    Check {
        file: "BENCH_merkle_antientropy.json",
        metric: "gate_replay_ratio",
        band: Band::MinRatio(0.5),
    },
    Check {
        file: "BENCH_merkle_antientropy.json",
        metric: "within_target",
        band: Band::MustBeTrue,
    },
    // Wall-clock throughput is the noisiest metric in the suite (CI
    // runner, thermal state), so the conservative floor is a quarter of
    // the recorded baseline; the 1M-ops/sec absolute gate and the
    // sim-equivalence verdicts stay strict booleans.
    Check {
        file: "BENCH_realtime_throughput.json",
        metric: "best_ops_per_sec",
        band: Band::MinRatio(0.25),
    },
    Check {
        file: "BENCH_realtime_throughput.json",
        metric: "all_equivalent",
        band: Band::MustBeTrue,
    },
    Check {
        file: "BENCH_realtime_throughput.json",
        metric: "within_target",
        band: Band::MustBeTrue,
    },
    // The CALM fast path's p50 advantage is enormous (fast-path ops
    // wait on nothing), so even a conservative floor catches a broken
    // scheduler; availability and equivalence stay strict.
    Check {
        file: "BENCH_calm_fastpath.json",
        metric: "gate_latency_ratio",
        band: Band::MinRatio(0.4),
    },
    Check {
        file: "BENCH_calm_fastpath.json",
        metric: "all_equivalent",
        band: Band::MustBeTrue,
    },
    Check {
        file: "BENCH_calm_fastpath.json",
        metric: "within_target",
        band: Band::MustBeTrue,
    },
];

/// Returns the checks whose payload file or metric name contains
/// `only` (case-sensitive substring; `None` selects everything).
/// Backs `bench_regress --only`, so a local perf iteration can rerun
/// one bench's gates without producing every payload first.
pub fn selected(only: Option<&str>) -> Vec<Check> {
    CHECKS
        .iter()
        .filter(|c| match only {
            Some(needle) => c.file.contains(needle) || c.metric.contains(needle),
            None => true,
        })
        .copied()
        .collect()
}

/// The verdict on one check.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Which check this judges.
    pub check: Check,
    /// Baseline value rendered for the report.
    pub baseline: String,
    /// Fresh value rendered for the report.
    pub fresh: String,
    /// Did the fresh value stay within the band?
    pub pass: bool,
    /// One-line explanation when failing.
    pub detail: String,
}

fn load_metrics(path: &Path) -> Result<Vec<(String, ReportValue)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e} (run the benches first?)", path.display()))?;
    report_fields(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn lookup<'a>(
    fields: &'a [(String, ReportValue)],
    metric: &str,
    path: &Path,
) -> Result<&'a ReportValue, String> {
    fields
        .iter()
        .find(|(name, _)| name == metric)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("{}: metric {metric:?} missing", path.display()))
}

fn as_number(v: &ReportValue, what: &str) -> Result<f64, String> {
    match v {
        ReportValue::Number(n) => Ok(*n),
        other => Err(format!("{what}: expected a number, found {other:?}")),
    }
}

fn as_bool(v: &ReportValue, what: &str) -> Result<bool, String> {
    match v {
        ReportValue::Bool(b) => Ok(*b),
        other => Err(format!("{what}: expected a bool, found {other:?}")),
    }
}

fn judge(check: &Check, base: &ReportValue, fresh: &ReportValue) -> Result<CheckOutcome, String> {
    let what = format!("{} {}", check.file, check.metric);
    let (baseline_s, fresh_s, pass, detail) = match check.band {
        Band::MinRatio(ratio) => {
            let b = as_number(base, &what)?;
            let f = as_number(fresh, &what)?;
            let floor = b * ratio;
            (
                format!("{b:.3}"),
                format!("{f:.3}"),
                f >= floor,
                format!("{f:.3} < floor {floor:.3} ({ratio:.2}× baseline {b:.3})"),
            )
        }
        Band::MaxAbsDelta(delta) => {
            let b = as_number(base, &what)?;
            let f = as_number(fresh, &what)?;
            let ceil = b + delta;
            (
                format!("{b:.2}"),
                format!("{f:.2}"),
                f <= ceil,
                format!("{f:.2} > ceiling {ceil:.2} (baseline {b:.2} {delta:+.1})"),
            )
        }
        Band::MustBeTrue => {
            let b = as_bool(base, &what)?;
            let f = as_bool(fresh, &what)?;
            (
                b.to_string(),
                f.to_string(),
                f,
                "gate verdict is false".to_string(),
            )
        }
    };
    Ok(CheckOutcome {
        check: *check,
        baseline: baseline_s,
        fresh: fresh_s,
        pass,
        detail: if pass { String::new() } else { detail },
    })
}

/// Runs every check in [`CHECKS`]: fresh payloads from `fresh_dir`,
/// committed baselines from `baseline_dir`. Errors on unreadable or
/// malformed payloads (a missing bench output is a failure, not a
/// skip — silent coverage loss is how regressions hide).
pub fn compare(fresh_dir: &Path, baseline_dir: &Path) -> Result<Vec<CheckOutcome>, String> {
    compare_checks(CHECKS, fresh_dir, baseline_dir)
}

/// Runs an explicit subset of checks (see [`selected`]). An empty
/// subset is an error: a filter that matches nothing would otherwise
/// report a vacuous pass.
pub fn compare_checks(
    checks: &[Check],
    fresh_dir: &Path,
    baseline_dir: &Path,
) -> Result<Vec<CheckOutcome>, String> {
    if checks.is_empty() {
        return Err("no checks selected (filter matched nothing)".to_string());
    }
    type Metrics = Vec<(String, ReportValue)>;
    let mut outcomes = Vec::with_capacity(checks.len());
    let mut last_file: Option<(&str, Metrics, Metrics)> = None;
    for check in checks {
        let reload = match &last_file {
            Some((file, _, _)) => *file != check.file,
            None => true,
        };
        if reload {
            let fresh = load_metrics(&fresh_dir.join(check.file))?;
            let base = load_metrics(&baseline_dir.join(check.file))?;
            last_file = Some((check.file, base, fresh));
        }
        let (_, base, fresh) = last_file.as_ref().expect("loaded above");
        let b = lookup(base, check.metric, &baseline_dir.join(check.file))?;
        let f = lookup(fresh, check.metric, &fresh_dir.join(check.file))?;
        outcomes.push(judge(check, b, f)?);
    }
    Ok(outcomes)
}

/// Renders the uniform regression report.
pub fn report(outcomes: &[CheckOutcome]) -> Table {
    let mut t = Table::new(["payload", "metric", "band", "baseline", "fresh", "verdict"]);
    for o in outcomes {
        t.row([
            o.check.file.to_string(),
            o.check.metric.to_string(),
            o.check.band.describe(),
            o.baseline.clone(),
            o.fresh.clone(),
            if o.pass {
                "OK".to_string()
            } else {
                format!("REGRESSED: {}", o.detail)
            },
        ]);
    }
    t
}

/// Copies every checked payload from `fresh_dir` over the committed
/// baselines — the `--bless` path after an intentional perf change.
pub fn bless(fresh_dir: &Path, baseline_dir: &Path) -> Result<Vec<&'static str>, String> {
    std::fs::create_dir_all(baseline_dir)
        .map_err(|e| format!("{}: {e}", baseline_dir.display()))?;
    let mut files: Vec<&'static str> = CHECKS.iter().map(|c| c.file).collect();
    files.dedup();
    for file in &files {
        let from = fresh_dir.join(file);
        // Validate before blessing: never commit a malformed baseline.
        load_metrics(&from)?;
        std::fs::copy(&from, baseline_dir.join(file))
            .map_err(|e| format!("{}: {e}", from.display()))?;
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, file: &str, contents: &str) {
        std::fs::write(dir.join(file), contents).unwrap();
    }

    fn scaffold(dir: &Path, speedup: f64, overhead: f64, ok: bool) {
        write(
            dir,
            "BENCH_language_scaling.json",
            &format!("{{\"gate_speedup\":{speedup},\"within_target\":{ok}}}\n"),
        );
        write(
            dir,
            "BENCH_symmetry_scaling.json",
            &format!("{{\"gate_speedup\":{speedup},\"within_target\":{ok}}}\n"),
        );
        write(
            dir,
            "BENCH_runtime_throughput.json",
            &format!(
                "{{\"gate_speedup\":{speedup},\"gate_bytes_ratio\":2.0,\"within_target\":{ok}}}\n"
            ),
        );
        write(
            dir,
            "BENCH_trace_overhead.json",
            &format!("{{\"overhead_pct\":{overhead},\"within_target\":{ok}}}\n"),
        );
        write(
            dir,
            "BENCH_fault_campaign.json",
            &format!(
                "{{\"overhead_pct\":{overhead},\"all_verdicts_ok\":{ok},\"within_target\":{ok}}}\n"
            ),
        );
        write(
            dir,
            "BENCH_profile_overhead.json",
            &format!(
                "{{\"overhead_pct\":{overhead},\"exact_attribution\":{ok},\
                 \"within_target\":{ok}}}\n"
            ),
        );
        write(
            dir,
            "BENCH_merkle_antientropy.json",
            &format!(
                "{{\"gate_bytes_ratio\":{speedup},\"gate_replay_ratio\":{speedup},\
                 \"within_target\":{ok}}}\n"
            ),
        );
        write(
            dir,
            "BENCH_realtime_throughput.json",
            &format!(
                "{{\"best_ops_per_sec\":{},\"all_equivalent\":{ok},\
                 \"within_target\":{ok}}}\n",
                speedup * 1.0e6
            ),
        );
        write(
            dir,
            "BENCH_calm_fastpath.json",
            &format!(
                "{{\"gate_latency_ratio\":{speedup},\"all_equivalent\":{ok},\
                 \"within_target\":{ok}}}\n"
            ),
        );
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("relax_regress_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn identical_payloads_pass_every_check() {
        let base = tmp("base_ok");
        let fresh = tmp("fresh_ok");
        scaffold(&base, 10.0, 1.0, true);
        scaffold(&fresh, 10.0, 1.0, true);
        let outcomes = compare(&fresh, &base).unwrap();
        assert_eq!(outcomes.len(), CHECKS.len());
        assert!(outcomes.iter().all(|o| o.pass));
        let rendered = report(&outcomes).to_string();
        assert!(rendered.contains("OK"));
        assert!(!rendered.contains("REGRESSED"));
    }

    #[test]
    fn slow_speedup_and_fat_overhead_regress() {
        let base = tmp("base_reg");
        let fresh = tmp("fresh_reg");
        scaffold(&base, 10.0, 1.0, true);
        // Speedup collapsed below 0.4× of baseline; overhead grew by
        // more than any delta band.
        scaffold(&fresh, 2.0, 9.0, true);
        let outcomes = compare(&fresh, &base).unwrap();
        let failed: Vec<&str> = outcomes
            .iter()
            .filter(|o| !o.pass)
            .map(|o| o.check.metric)
            .collect();
        assert!(failed.contains(&"gate_speedup"));
        assert!(failed.contains(&"overhead_pct"));
        assert!(report(&outcomes).to_string().contains("REGRESSED"));
    }

    #[test]
    fn improvements_never_fail() {
        let base = tmp("base_imp");
        let fresh = tmp("fresh_imp");
        scaffold(&base, 10.0, 3.0, true);
        // Faster and cheaper than the baseline.
        scaffold(&fresh, 50.0, 0.1, true);
        let outcomes = compare(&fresh, &base).unwrap();
        assert!(outcomes.iter().all(|o| o.pass));
    }

    #[test]
    fn false_gate_fails_even_within_bands() {
        let base = tmp("base_gate");
        let fresh = tmp("fresh_gate");
        scaffold(&base, 10.0, 1.0, true);
        scaffold(&fresh, 10.0, 1.0, false);
        let outcomes = compare(&fresh, &base).unwrap();
        assert!(outcomes
            .iter()
            .any(|o| o.check.metric == "within_target" && !o.pass));
    }

    #[test]
    fn missing_payload_is_an_error_not_a_skip() {
        let base = tmp("base_missing");
        let fresh = tmp("fresh_missing");
        scaffold(&base, 10.0, 1.0, true);
        scaffold(&fresh, 10.0, 1.0, true);
        std::fs::remove_file(fresh.join("BENCH_profile_overhead.json")).unwrap();
        let err = compare(&fresh, &base).unwrap_err();
        assert!(err.contains("BENCH_profile_overhead.json"), "{err}");
    }

    #[test]
    fn bless_copies_and_validates() {
        let base = tmp("base_bless");
        let fresh = tmp("fresh_bless");
        scaffold(&fresh, 7.0, 2.0, true);
        let files = bless(&fresh, &base).unwrap();
        assert_eq!(files.len(), 9);
        let outcomes = compare(&fresh, &base).unwrap();
        assert!(outcomes.iter().all(|o| o.pass));
    }

    #[test]
    fn selection_filters_by_payload_or_metric_substring() {
        let all = selected(None);
        assert_eq!(all.len(), CHECKS.len());
        let merkle = selected(Some("merkle"));
        assert_eq!(merkle.len(), 3);
        assert!(merkle
            .iter()
            .all(|c| c.file == "BENCH_merkle_antientropy.json"));
        let realtime = selected(Some("realtime"));
        assert_eq!(realtime.len(), 3);
        assert!(realtime
            .iter()
            .all(|c| c.file == "BENCH_realtime_throughput.json"));
        let calm = selected(Some("calm"));
        assert_eq!(calm.len(), 3);
        assert!(calm.iter().all(|c| c.file == "BENCH_calm_fastpath.json"));
        let by_metric = selected(Some("gate_bytes_ratio"));
        assert!(!by_metric.is_empty());
        assert!(by_metric.iter().all(|c| c.metric == "gate_bytes_ratio"));
        assert!(selected(Some("no_such_check")).is_empty());
    }

    #[test]
    fn filtered_compare_only_reads_the_matching_payloads() {
        let base = tmp("base_only");
        let fresh = tmp("fresh_only");
        scaffold(&base, 10.0, 1.0, true);
        scaffold(&fresh, 10.0, 1.0, true);
        // Remove an unrelated payload: a merkle-only run must not
        // touch it, and an unfiltered run must still fail on it.
        std::fs::remove_file(fresh.join("BENCH_trace_overhead.json")).unwrap();
        let outcomes = compare_checks(&selected(Some("merkle")), &fresh, &base).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.pass));
        assert!(compare(&fresh, &base).is_err());
        let err = compare_checks(&selected(Some("no_such_check")), &fresh, &base).unwrap_err();
        assert!(err.contains("matched nothing"), "{err}");
    }
}
