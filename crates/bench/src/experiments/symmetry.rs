//! Shared-walk and orbit-reduction scaling on the Theorem-4 workloads.
//!
//! Three row families, one JSON payload (`BENCH_symmetry_scaling.json`):
//!
//! * **Common rows** — [`verify_taxi_lattice_perpoint`] (the PR-3
//!   engine: four independent product walks over the raw QCA) against
//!   [`verify_taxi_lattice`] (Rep-view quotient + one shared multi-point
//!   walk) at bounds both can reach. The deepest common bound (items
//!   `{1,2,3}`, length ≤ 8) is the CI gate: the shared walk must be at
//!   least [`TARGET_SPEEDUP`]× faster with every language size equal.
//! * **Frontier rows** — bounds the per-point engine cannot reasonably
//!   reach, verified by the shared walk alone and recorded with their
//!   per-point language sizes (the new entries for EXPERIMENTS.md).
//! * **Orbit rows** — the SSqueue join check (`L(Stuttering_2 ∩
//!   Semiqueue_2) = L(SSqueue_{2,2})`) run unreduced and with
//!   item-permutation orbit reduction, comparing peak frontier widths
//!   (counts must match exactly; these types are equality-based, so the
//!   reduction is sound — see `relax_queues::relabel`).

use relax_automata::subset::IntersectionAutomaton;
use relax_automata::symmetry::compare_upto_reduced_probed;
use relax_automata::{compare_upto_probed, CompareOptions};
use relax_queues::{
    queue_alphabet, QueueItemSymmetry, SemiqueueAutomaton, SsQueueAutomaton, StutteringAutomaton,
};

use crate::experiments::profile::{probed, profiled_perpoint, profiled_shared};
use crate::table::Table;

/// The gate: shared-walk speedup over the per-point engine required at
/// the deepest common bound.
pub const TARGET_SPEEDUP: f64 = 5.0;

/// One bound both engines can reach.
#[derive(Debug, Clone)]
pub struct CommonRow {
    /// The item alphabet used.
    pub items: Vec<i64>,
    /// The history-length bound.
    pub max_len: usize,
    /// Per-point engine wall time.
    pub perpoint_ns: u128,
    /// Shared-walk wall time.
    pub shared_ns: u128,
    /// `perpoint_ns / shared_ns`.
    pub speedup: f64,
    /// Widest per-point product level, in nodes.
    pub perpoint_peak: usize,
    /// Widest shared tuple level, in nodes.
    pub shared_peak: usize,
    /// Did both paths verify every lattice point?
    pub holds: bool,
    /// Did both paths report identical per-point language sizes?
    pub agree: bool,
}

/// One bound only the shared walk reaches.
#[derive(Debug, Clone)]
pub struct FrontierRow {
    /// The item alphabet used.
    pub items: Vec<i64>,
    /// The history-length bound.
    pub max_len: usize,
    /// Shared-walk wall time.
    pub shared_ns: u128,
    /// Widest shared tuple level, in nodes.
    pub shared_peak: usize,
    /// Did every lattice point verify?
    pub holds: bool,
    /// Per-point language sizes, strongest point first.
    pub sizes: Vec<usize>,
}

/// One orbit-reduction measurement of the SSqueue join check.
#[derive(Debug, Clone)]
pub struct OrbitRow {
    /// The item alphabet used.
    pub items: Vec<i64>,
    /// The history-length bound.
    pub max_len: usize,
    /// Unreduced product-walk wall time.
    pub full_ns: u128,
    /// Orbit-reduced product-walk wall time.
    pub reduced_ns: u128,
    /// Widest unreduced product level, in nodes.
    pub full_peak: usize,
    /// Widest orbit-reduced product level, in nodes.
    pub reduced_peak: usize,
    /// Did both walks agree (same verdicts, identical per-length counts)?
    pub agree: bool,
}

/// Measures one common bound with both taxi-verification paths, each
/// timed by the flight recorder (wall time = `theorem4` root span
/// total) instead of a separate hand-rolled `Instant`.
pub fn measure_common(items: &[i64], max_len: usize) -> CommonRow {
    let perpoint_run = profiled_perpoint(items, max_len);
    let perpoint_ns = perpoint_run.wall_ns();
    let perpoint = perpoint_run.result;

    let shared_run = profiled_shared(items, max_len);
    let shared_ns = shared_run.wall_ns();
    let shared = shared_run.result;

    let agree = perpoint
        .points
        .iter()
        .zip(&shared.points)
        .all(|(p, s)| p.language_size == s.language_size && p.holds() == s.holds());
    CommonRow {
        items: items.to_vec(),
        max_len,
        perpoint_ns,
        shared_ns,
        speedup: perpoint_ns as f64 / shared_ns.max(1) as f64,
        perpoint_peak: perpoint.peak_frontier(),
        shared_peak: shared.peak_frontier(),
        holds: perpoint.holds() && shared.holds(),
        agree,
    }
}

/// Verifies one frontier bound with the shared walk alone.
pub fn measure_frontier(items: &[i64], max_len: usize) -> FrontierRow {
    let shared_run = profiled_shared(items, max_len);
    let shared_ns = shared_run.wall_ns();
    let shared = shared_run.result;
    FrontierRow {
        items: items.to_vec(),
        max_len,
        shared_ns,
        shared_peak: shared.peak_frontier(),
        holds: shared.holds(),
        sizes: shared.points.iter().map(|p| p.language_size).collect(),
    }
}

/// Measures the SSqueue join check unreduced and orbit-reduced.
pub fn measure_orbit(items: &[i64], max_len: usize) -> OrbitRow {
    let alphabet = queue_alphabet(items);
    let join = IntersectionAutomaton::new(StutteringAutomaton::new(2), SemiqueueAutomaton::new(2));
    let ssq = SsQueueAutomaton::new(2, 2);
    let sym = QueueItemSymmetry::new(items);

    let full_run = probed(|p| {
        compare_upto_probed(
            &join,
            &ssq,
            &alphabet,
            max_len,
            CompareOptions::counting(),
            p,
        )
    });
    let full_ns = full_run.wall_ns();
    let full = full_run.result;

    let reduced_run = probed(|p| {
        compare_upto_reduced_probed(
            &join,
            &ssq,
            &alphabet,
            max_len,
            CompareOptions::counting(),
            &sym,
            p,
        )
    });
    let reduced_ns = reduced_run.wall_ns();
    let reduced = reduced_run.result;

    let agree = full.left_sizes == reduced.left_sizes
        && full.right_sizes == reduced.right_sizes
        && full.left_not_in_right.is_some() == reduced.left_not_in_right.is_some()
        && full.right_not_in_left.is_some() == reduced.right_not_in_left.is_some();
    OrbitRow {
        items: items.to_vec(),
        max_len,
        full_ns,
        reduced_ns,
        full_peak: full.peak_level_width,
        reduced_peak: reduced.peak_level_width,
        agree,
    }
}

/// Runs all three row families and renders their tables.
#[allow(clippy::type_complexity)]
pub fn run(
    common_bounds: &[(Vec<i64>, usize)],
    frontier_bounds: &[(Vec<i64>, usize)],
    orbit_bounds: &[(Vec<i64>, usize)],
) -> (Vec<Table>, Vec<CommonRow>, Vec<FrontierRow>, Vec<OrbitRow>) {
    let common: Vec<CommonRow> = common_bounds
        .iter()
        .map(|(items, len)| measure_common(items, *len))
        .collect();
    let frontier: Vec<FrontierRow> = frontier_bounds
        .iter()
        .map(|(items, len)| measure_frontier(items, *len))
        .collect();
    let orbit: Vec<OrbitRow> = orbit_bounds
        .iter()
        .map(|(items, len)| measure_orbit(items, *len))
        .collect();

    let mut t1 = Table::new([
        "items",
        "len ≤",
        "per-point (ms)",
        "shared (ms)",
        "speedup",
        "per-point peak",
        "shared peak",
        "verdict",
    ]);
    for r in &common {
        t1.row([
            format!("{:?}", r.items),
            r.max_len.to_string(),
            format!("{:.1}", r.perpoint_ns as f64 / 1e6),
            format!("{:.1}", r.shared_ns as f64 / 1e6),
            format!("{:.2}x", r.speedup),
            r.perpoint_peak.to_string(),
            r.shared_peak.to_string(),
            if r.holds && r.agree {
                "OK".to_string()
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }
    let mut t2 = Table::new(["items", "len ≤", "shared (ms)", "peak", "holds", "sizes"]);
    for r in &frontier {
        t2.row([
            format!("{:?}", r.items),
            r.max_len.to_string(),
            format!("{:.1}", r.shared_ns as f64 / 1e6),
            r.shared_peak.to_string(),
            r.holds.to_string(),
            format!("{:?}", r.sizes),
        ]);
    }
    let mut t3 = Table::new([
        "items",
        "len ≤",
        "full (ms)",
        "reduced (ms)",
        "full peak",
        "reduced peak",
        "agree",
    ]);
    for r in &orbit {
        t3.row([
            format!("{:?}", r.items),
            r.max_len.to_string(),
            format!("{:.1}", r.full_ns as f64 / 1e6),
            format!("{:.1}", r.reduced_ns as f64 / 1e6),
            r.full_peak.to_string(),
            r.reduced_peak.to_string(),
            r.agree.to_string(),
        ]);
    }
    (vec![t1, t2, t3], common, frontier, orbit)
}

/// Renders all rows as the `BENCH_symmetry_scaling.json` payload; the
/// last common row carries the gate.
pub fn to_json(common: &[CommonRow], frontier: &[FrontierRow], orbit: &[OrbitRow]) -> String {
    let gate = common.last().expect("at least one common bound");
    let common_json: Vec<String> = common
        .iter()
        .map(|r| {
            format!(
                "{{\"items\":{},\"max_len\":{},\"perpoint_ns\":{},\"shared_ns\":{},\
                 \"speedup\":{:.3},\"perpoint_peak\":{},\"shared_peak\":{},\
                 \"holds\":{},\"agree\":{}}}",
                r.items.len(),
                r.max_len,
                r.perpoint_ns,
                r.shared_ns,
                r.speedup,
                r.perpoint_peak,
                r.shared_peak,
                r.holds,
                r.agree
            )
        })
        .collect();
    let frontier_json: Vec<String> = frontier
        .iter()
        .map(|r| {
            format!(
                "{{\"items\":{},\"max_len\":{},\"shared_ns\":{},\"shared_peak\":{},\
                 \"holds\":{},\"sizes\":{:?}}}",
                r.items.len(),
                r.max_len,
                r.shared_ns,
                r.shared_peak,
                r.holds,
                r.sizes
            )
        })
        .collect();
    let orbit_json: Vec<String> = orbit
        .iter()
        .map(|r| {
            format!(
                "{{\"items\":{},\"max_len\":{},\"full_ns\":{},\"reduced_ns\":{},\
                 \"full_peak\":{},\"reduced_peak\":{},\"agree\":{}}}",
                r.items.len(),
                r.max_len,
                r.full_ns,
                r.reduced_ns,
                r.full_peak,
                r.reduced_peak,
                r.agree
            )
        })
        .collect();
    let frontier_ok = frontier.iter().all(|r| r.holds);
    let orbit_ok = orbit.iter().all(|r| r.agree);
    format!(
        "{{\"bench\":\"symmetry_scaling\",\"workload\":\"taxi_lattice_shared_walk\",\
         \"common_rows\":[{}],\"frontier_rows\":[{}],\"orbit_rows\":[{}],\
         \"gate_items\":{},\"gate_max_len\":{},\"gate_speedup\":{:.3},\
         \"target_speedup\":{TARGET_SPEEDUP:.1},\"within_target\":{}}}\n",
        common_json.join(","),
        frontier_json.join(","),
        orbit_json.join(","),
        gate.items.len(),
        gate.max_len,
        gate.speedup,
        gate.speedup >= TARGET_SPEEDUP && gate.holds && gate.agree && frontier_ok && orbit_ok
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_rows_agree_at_small_bounds() {
        let row = measure_common(&[1, 2], 4);
        assert!(row.holds);
        assert!(row.agree);
        assert!(row.shared_peak <= row.perpoint_peak);
    }

    #[test]
    fn frontier_rows_record_sizes() {
        let row = measure_frontier(&[1, 2], 4);
        assert!(row.holds);
        assert_eq!(row.sizes.len(), 4);
    }

    #[test]
    fn orbit_rows_agree_and_shrink() {
        let row = measure_orbit(&[1, 2], 5);
        assert!(row.agree);
        assert!(row.reduced_peak <= row.full_peak);
    }

    #[test]
    fn json_payload_carries_the_gate() {
        let common = vec![measure_common(&[1, 2], 3)];
        let frontier = vec![measure_frontier(&[1, 2], 3)];
        let orbit = vec![measure_orbit(&[1, 2], 3)];
        let json = to_json(&common, &frontier, &orbit);
        assert!(json.contains("\"bench\":\"symmetry_scaling\""));
        assert!(json.contains("\"within_target\":"));
    }
}
