//! Wall-clock throughput of the sharded threaded backend (PERF-T).
//!
//! Sweeps shard count × group-commit batch × replica count over the
//! taxi-queue and bank-account workloads, each row driving hundreds of
//! thousands of operations through [`ThreadedSystem`] and measuring
//! aggregate operations per wall-clock second plus p50/p99 operation
//! latency from the backend's wall-nanosecond histogram.
//!
//! Every row also runs an *equivalence probe*: a small single-client
//! prefix of the row's workload through both the discrete-event
//! simulator and the threaded backend (same replica count), demanding
//! exactly equal outcome shapes, replica logs, and merged history — the
//! differential-oracle check inlined into the benchmark, so a fast but
//! wrong backend cannot pass the gate. (The full randomized oracle
//! lives in `relax-quorum/tests/backend_oracle.rs`.)
//!
//! The gate: the best sweep point must clear
//! [`TARGET_OPS_PER_SEC`] with every row equivalent.

use relax_quorum::relation::{AccountKind, QueueKind};
use relax_quorum::runtime::{AccountInv, BankAccountType, QueueInv, TaxiQueueType};
use relax_quorum::{
    outcome_shapes, ClientConfig, ClientTable, Executor, OutcomeShape, QuorumSystem,
    ReplicatedType, ThreadedConfig, ThreadedSystem, VotingAssignment,
};
use relax_sim::NetworkConfig;
use relax_trace::TimeBase;

use crate::table::Table;

/// The gate: aggregate operations per second the best sweep point must
/// reach.
pub const TARGET_OPS_PER_SEC: f64 = 1_000_000.0;

/// Broker flush deadline used by every row (microseconds).
pub const FLUSH_MICROS: u64 = 20;

/// Which replicated type a row drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Taxi priority queue: non-commutative bag views (every dequeue
    /// evaluates the view), majority dequeue quorums.
    Taxi,
    /// Bank account: commutative integer views maintained incrementally,
    /// single-site credit quorums.
    Account,
}

impl Workload {
    /// Short name used in tables and the JSON payload.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Taxi => "taxi",
            Workload::Account => "account",
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Which workload.
    pub workload: Workload,
    /// Shard front-end threads.
    pub shards: usize,
    /// Group-commit batch ceiling (also clients per shard).
    pub batch: usize,
    /// Replica sites.
    pub replicas: usize,
    /// Invocations each client submits.
    pub ops_per_client: usize,
}

/// The sweep the `exp_realtime_throughput` binary runs. Account rows
/// carry the deep batches (the commutative fast path the batching
/// layers exist for: views maintained incrementally, O(1) per op). Taxi
/// rows stay small — every taxi `apply` rebuilds a bag of pending
/// requests, so its per-op cost grows with the live history and the row
/// would measure bag cloning, not the execution backend.
pub const SWEEP: &[Config] = &[
    Config {
        workload: Workload::Taxi,
        shards: 1,
        batch: 64,
        replicas: 3,
        ops_per_client: 32,
    },
    Config {
        workload: Workload::Taxi,
        shards: 4,
        batch: 64,
        replicas: 3,
        ops_per_client: 32,
    },
    Config {
        workload: Workload::Account,
        shards: 1,
        batch: 256,
        replicas: 3,
        ops_per_client: 512,
    },
    Config {
        workload: Workload::Account,
        shards: 2,
        batch: 256,
        replicas: 3,
        ops_per_client: 256,
    },
    Config {
        workload: Workload::Account,
        shards: 4,
        batch: 256,
        replicas: 3,
        ops_per_client: 128,
    },
    Config {
        workload: Workload::Account,
        shards: 1,
        batch: 512,
        replicas: 3,
        ops_per_client: 256,
    },
    Config {
        workload: Workload::Account,
        shards: 1,
        batch: 256,
        replicas: 5,
        ops_per_client: 256,
    },
];

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct RealtimeRow {
    /// The configuration.
    pub config: Config,
    /// Clients (`shards × batch`).
    pub clients: usize,
    /// Operations completed.
    pub ops: u64,
    /// Wall-clock nanoseconds for the whole run.
    pub wall_nanos: u64,
    /// Aggregate operations per second.
    pub ops_per_sec: f64,
    /// Median operation latency in nanoseconds (wall-clock, from the
    /// relax-trace registry's `WallNanos` histogram).
    pub p50_nanos: u64,
    /// 99th-percentile operation latency in nanoseconds.
    pub p99_nanos: u64,
    /// Did the row's equivalence probe find the threaded backend
    /// observably identical to the sim?
    pub equivalent: bool,
}

fn taxi_assignment(n: usize) -> VotingAssignment<QueueKind> {
    let maj = n / 2 + 1;
    VotingAssignment::new(n)
        .with_initial(QueueKind::Deq, maj)
        .with_final(QueueKind::Deq, maj)
        .with_initial(QueueKind::Enq, 1)
        .with_final(QueueKind::Enq, n - maj + 1)
}

fn account_assignment(n: usize) -> VotingAssignment<AccountKind> {
    VotingAssignment::new(n)
        .with_initial(AccountKind::Credit, 1)
        .with_final(AccountKind::Credit, 1)
        .with_initial(AccountKind::Debit, 1)
        .with_final(AccountKind::Debit, n)
}

/// The taxi workload: mostly enqueues (distinct priorities), every
/// eighth invocation a dequeue.
fn taxi_inv(client: usize, i: usize) -> QueueInv {
    if i % 8 == 7 {
        QueueInv::Deq
    } else {
        QueueInv::Enq((client * 1_000 + i) as i64)
    }
}

/// The account workload: credits with every sixteenth invocation a
/// debit (which must record at every site — the expensive write).
fn account_inv(_client: usize, i: usize) -> AccountInv {
    if i % 16 == 15 {
        AccountInv::Debit(1)
    } else {
        AccountInv::Credit(1)
    }
}

/// Runs a small single-client prefix of the row's workload through both
/// backends and compares outcome shapes, per-replica logs, and the
/// merged history exactly.
fn probe_equivalence<T>(
    ttype: T,
    replicas: usize,
    assignment: VotingAssignment<<T::Op as relax_quorum::HasKind>::Kind>,
    invs: &[T::Inv],
) -> bool
where
    T: ReplicatedType + Clone + Sync,
    T::Op: PartialEq + Send + Sync,
    T::Inv: Send,
    T::Value: Send,
    <T::Op as relax_quorum::HasKind>::Kind: Sync,
{
    let mut sim = QuorumSystem::new(
        ttype.clone(),
        replicas,
        assignment.clone(),
        ClientConfig::default(),
        // Fixed delay, no loss: FIFO, so the sim is deterministic and
        // the threaded backend must reproduce it exactly.
        NetworkConfig::new(2, 2, 0.0),
        0xB0A7,
    );
    let mut thr = ThreadedSystem::new(ttype, replicas, 1, assignment, ThreadedConfig::default());
    for inv in invs {
        sim.submit_to(0, inv.clone());
        thr.submit_to(0, inv.clone());
    }
    Executor::run_all(&mut sim);
    thr.run_all();
    let sim_shapes: Vec<OutcomeShape<T::Op>> = outcome_shapes(sim.outcomes_of(0));
    let thr_shapes: Vec<OutcomeShape<T::Op>> = outcome_shapes(ClientTable::outcomes_of(&thr, 0));
    sim_shapes == thr_shapes
        && (0..replicas).all(|i| sim.replica_log(i) == Executor::replica_log(&thr, i))
        && sim.merged_history() == Executor::merged_history(&thr)
}

/// Builds, loads, and runs one sweep point end to end.
pub fn measure(config: Config) -> RealtimeRow {
    let clients = config.shards * config.batch;
    let tc = ThreadedConfig {
        shards: config.shards,
        batch: config.batch,
        flush_micros: FLUSH_MICROS,
    };
    let (stats, p50, p99, equivalent) = match config.workload {
        Workload::Taxi => {
            let mut sys = ThreadedSystem::new(
                TaxiQueueType,
                config.replicas,
                clients,
                taxi_assignment(config.replicas),
                tc,
            );
            for c in 0..clients {
                for i in 0..config.ops_per_client {
                    sys.submit_to(c, taxi_inv(c, i));
                }
            }
            let stats = sys.run_all();
            let (p50, p99) = latency_quantiles(sys.registry());
            let probe: Vec<QueueInv> = (0..24).map(|i| taxi_inv(0, i)).collect();
            let eq = probe_equivalence(
                TaxiQueueType,
                config.replicas,
                taxi_assignment(config.replicas),
                &probe,
            );
            (stats, p50, p99, eq)
        }
        Workload::Account => {
            let mut sys = ThreadedSystem::new(
                BankAccountType,
                config.replicas,
                clients,
                account_assignment(config.replicas),
                tc,
            );
            for c in 0..clients {
                for i in 0..config.ops_per_client {
                    sys.submit_to(c, account_inv(c, i));
                }
            }
            let stats = sys.run_all();
            let (p50, p99) = latency_quantiles(sys.registry());
            let probe: Vec<AccountInv> = (0..24).map(|i| account_inv(0, i)).collect();
            let eq = probe_equivalence(
                BankAccountType,
                config.replicas,
                account_assignment(config.replicas),
                &probe,
            );
            (stats, p50, p99, eq)
        }
    };
    RealtimeRow {
        config,
        clients,
        ops: stats.ops,
        wall_nanos: stats.wall_nanos,
        ops_per_sec: stats.ops_per_sec(),
        p50_nanos: p50,
        p99_nanos: p99,
        equivalent,
    }
}

/// Pulls p50/p99 out of the backend's wall-nanos latency histogram.
fn latency_quantiles(registry: &relax_trace::Registry) -> (u64, u64) {
    let Some(hist) = registry.get_histogram("realtime_op_latency_nanos") else {
        return (0, 0);
    };
    debug_assert_eq!(hist.time_base(), TimeBase::WallNanos);
    let mut hist = hist.clone();
    (
        hist.quantile(0.5).unwrap_or(0),
        hist.quantile(0.99).unwrap_or(0),
    )
}

/// Measures every sweep point and renders the table.
pub fn run(sweep: &[Config]) -> (Table, Vec<RealtimeRow>) {
    let rows: Vec<RealtimeRow> = sweep.iter().map(|&c| measure(c)).collect();
    let mut t = Table::new([
        "workload",
        "shards",
        "batch",
        "replicas",
        "clients",
        "ops",
        "wall (ms)",
        "ops/sec",
        "p50 (µs)",
        "p99 (µs)",
        "verdict",
    ]);
    for r in &rows {
        t.row([
            r.config.workload.name().to_string(),
            r.config.shards.to_string(),
            r.config.batch.to_string(),
            r.config.replicas.to_string(),
            r.clients.to_string(),
            r.ops.to_string(),
            format!("{:.1}", r.wall_nanos as f64 / 1e6),
            format!("{:.0}", r.ops_per_sec),
            format!("{:.1}", r.p50_nanos as f64 / 1e3),
            format!("{:.1}", r.p99_nanos as f64 / 1e3),
            if r.equivalent {
                "EQUIVALENT".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    (t, rows)
}

/// The best (highest-throughput) row.
pub fn best(rows: &[RealtimeRow]) -> &RealtimeRow {
    rows.iter()
        .max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec))
        .expect("at least one sweep point")
}

/// Renders the rows as the `BENCH_realtime_throughput.json` payload.
pub fn to_json(rows: &[RealtimeRow]) -> String {
    let top = best(rows);
    let all_equivalent = rows.iter().all(|r| r.equivalent);
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"workload\":\"{}\",\"shards\":{},\"batch\":{},\"replicas\":{},\
                 \"clients\":{},\"ops\":{},\"wall_nanos\":{},\"ops_per_sec\":{:.0},\
                 \"p50_nanos\":{},\"p99_nanos\":{},\"equivalent\":{}}}",
                r.config.workload.name(),
                r.config.shards,
                r.config.batch,
                r.config.replicas,
                r.clients,
                r.ops,
                r.wall_nanos,
                r.ops_per_sec,
                r.p50_nanos,
                r.p99_nanos,
                r.equivalent
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"realtime_throughput\",\
         \"workloads\":\"taxi_queue,bank_account\",\
         \"flush_micros\":{FLUSH_MICROS},\
         \"rows\":[{}],\
         \"best_workload\":\"{}\",\"best_shards\":{},\"best_batch\":{},\
         \"best_replicas\":{},\"best_ops_per_sec\":{:.0},\
         \"best_p50_nanos\":{},\"best_p99_nanos\":{},\
         \"all_equivalent\":{all_equivalent},\
         \"target_ops_per_sec\":{TARGET_OPS_PER_SEC:.0},\
         \"within_target\":{}}}\n",
        row_json.join(","),
        top.config.workload.name(),
        top.config.shards,
        top.config.batch,
        top.config.replicas,
        top.ops_per_sec,
        top.p50_nanos,
        top.p99_nanos,
        top.ops_per_sec >= TARGET_OPS_PER_SEC && all_equivalent
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny sweep point exercising both workloads end to end (debug
    /// builds run this; the 1M-ops/sec gate itself is release-only, in
    /// the binary).
    fn small(workload: Workload) -> Config {
        Config {
            workload,
            shards: 2,
            batch: 4,
            replicas: 3,
            ops_per_client: 6,
        }
    }

    #[test]
    fn rows_complete_all_ops_and_probe_equivalence() {
        for workload in [Workload::Taxi, Workload::Account] {
            let row = measure(small(workload));
            assert_eq!(row.clients, 8);
            assert_eq!(row.ops, 8 * 6, "{workload:?}");
            assert!(row.equivalent, "{workload:?} probe diverged");
            assert!(row.ops_per_sec > 0.0);
            assert!(row.p99_nanos >= row.p50_nanos);
        }
    }

    #[test]
    fn json_payload_carries_the_gate() {
        let rows = vec![measure(small(Workload::Account))];
        let json = to_json(&rows);
        assert!(json.contains("\"bench\":\"realtime_throughput\""));
        assert!(json.contains("\"best_ops_per_sec\":"));
        assert!(json.contains("\"all_equivalent\":true"));
        assert!(json.contains("\"within_target\":"));
        assert!(json.contains("\"target_ops_per_sec\":1000000"));
    }
}
