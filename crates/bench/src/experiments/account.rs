//! §3.4 operational experiments: premature debits and the no-overdraft
//! invariant.
//!
//! The bank announces a credit as soon as *any* replica records it and
//! lets the remaining updates propagate in the background (final Credit
//! quorum of one — `A1` effectively relaxed). A debit issued too soon
//! after a credit may miss it and bounce spuriously; "the probability
//! that an ATM performing a debit would fail to observe an earlier credit
//! would diminish in time".

use relax_queues::AccountOp;
use relax_quorum::relation::AccountKind;
use relax_quorum::runtime::{AccountInv, BankAccountType, Outcome};
use relax_quorum::{ClientConfig, QuorumSystem, VotingAssignment};
use relax_sim::NetworkConfig;

use crate::experiments::par::fan_trials;
use crate::table::Table;

/// One row of the premature-debit decay experiment.
#[derive(Debug, Clone)]
pub struct DecayRow {
    /// Virtual-time gap between the credit completing and the debit
    /// being issued.
    pub gap: u64,
    /// Fraction of trials in which the debit bounced spuriously.
    pub bounce_rate: f64,
    /// Trials run.
    pub trials: u32,
}

/// The A1-relaxed assignment of §3.4: credits announce after one replica
/// (final Credit quorum 1 — the rest propagates in the background, so
/// `A1` is *not* guaranteed: 1 + 1 ≤ n); debits read any single replica
/// but record at **all** sites, which keeps `A2` (1 + n > n: every read
/// sees every earlier debit).
fn atm_assignment(n: usize) -> VotingAssignment<AccountKind> {
    let a = VotingAssignment::new(n)
        .with_initial(AccountKind::Credit, 1)
        .with_final(AccountKind::Credit, 1)
        .with_initial(AccountKind::Debit, 1)
        .with_final(AccountKind::Debit, n);
    debug_assert!(a.satisfies(&relax_quorum::relation::account_relation(false, true)));
    debug_assert!(!a.satisfies(&relax_quorum::relation::account_relation(true, true)));
    a
}

/// Sweeps the credit→debit gap, measuring the spurious bounce rate.
pub fn premature_debit_decay(gaps: &[u64], trials: u32, n_replicas: usize) -> Vec<DecayRow> {
    premature_debit_decay_with_gossip(gaps, trials, n_replicas, None)
}

/// As [`premature_debit_decay`], with optional replica anti-entropy:
/// gossip shortens the stale window, so the decay curve drops faster.
pub fn premature_debit_decay_with_gossip(
    gaps: &[u64],
    trials: u32,
    n_replicas: usize,
    gossip_interval: Option<u64>,
) -> Vec<DecayRow> {
    let mut rows = Vec::new();
    for &gap in gaps {
        // Each trial is self-contained (its seed derives from the trial
        // index), so the sweep fans across threads; the bounce count is
        // a sum, so merge order cannot matter.
        let bounces = fan_trials(trials, |trial| {
            let mut sys = QuorumSystem::new(
                BankAccountType,
                n_replicas,
                atm_assignment(n_replicas),
                ClientConfig::default(),
                NetworkConfig::new(1, 20, 0.0),
                0xACC0 + u64::from(trial) * 7919 + gap,
            );
            if let Some(interval) = gossip_interval {
                sys = sys.with_gossip(interval);
            }
            sys.submit(AccountInv::Credit(10));
            // Let the credit complete and propagate for `gap` ticks
            // beyond its announcement...
            sys.run_to_first_outcome(200_000);
            let announce = sys.world().now();
            sys.run_until(relax_sim::SimTime(announce.ticks() + gap));
            // ...then issue the debit. (Gossiping systems never quiesce;
            // a generous time bound covers the debit round trips.)
            sys.submit(AccountInv::Debit(5));
            let deadline = sys.world().now().ticks() + 2_000;
            sys.run_until(relax_sim::SimTime(deadline));
            u32::from(matches!(
                sys.outcomes().get(1),
                Some(Outcome::Completed {
                    op: AccountOp::DebitOverdraft(_),
                    ..
                })
            ))
        });
        let bounced: u32 = bounces.iter().sum();
        rows.push(DecayRow {
            gap,
            bounce_rate: f64::from(bounced) / f64::from(trials),
            trials,
        });
    }
    rows
}

/// Renders the decay rows.
pub fn render_decay(rows: &[DecayRow]) -> Table {
    let mut t = Table::new(["gap (ticks)", "spurious bounce rate", "trials"]);
    for r in rows {
        t.row([
            r.gap.to_string(),
            format!("{:.3}", r.bounce_rate),
            r.trials.to_string(),
        ]);
    }
    t
}

/// The invariant demonstration: across many seeds with the A1-relaxed
/// assignment, completed `DebitOk` totals never exceed completed credits
/// (the no-overdraft property `A2` buys), while bounces — spurious ones
/// from stale views plus legitimate insufficient-funds ones — occur.
/// Returns `(overdrafts, bounces, runs)`.
pub fn overdraft_invariant(trials: u32, n_replicas: usize) -> (u32, u32, u32) {
    let per_trial = fan_trials(trials, |trial| {
        let mut sys = QuorumSystem::new(
            BankAccountType,
            n_replicas,
            atm_assignment(n_replicas),
            ClientConfig::default(),
            NetworkConfig::new(1, 20, 0.0),
            0xBEEF + u64::from(trial) * 104_729,
        );
        sys.submit(AccountInv::Credit(10));
        sys.submit(AccountInv::Debit(6));
        sys.submit(AccountInv::Debit(6));
        sys.run_to_quiescence(300_000);
        let mut credits = 0i64;
        let mut debits = 0i64;
        let mut spurious = 0u32;
        for o in sys.outcomes() {
            if let Outcome::Completed { op, .. } = o {
                match op {
                    AccountOp::Credit(n) => credits += i64::from(*n),
                    AccountOp::DebitOk(n) => debits += i64::from(*n),
                    AccountOp::DebitOverdraft(_) => spurious += 1,
                }
            }
        }
        (u32::from(debits > credits), spurious)
    });
    let overdrafts = per_trial.iter().map(|(o, _)| o).sum();
    let spurious = per_trial.iter().map(|(_, s)| s).sum();
    (overdrafts, spurious, trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounce_rate_decays_with_gap() {
        let rows = premature_debit_decay(&[0, 60], 40, 3);
        assert!(
            rows[0].bounce_rate > rows[1].bounce_rate,
            "gap 0 rate {} should exceed gap 60 rate {}",
            rows[0].bounce_rate,
            rows[1].bounce_rate
        );
        // At a 60-tick gap (3× max delay) every background write has
        // landed: no bounces.
        assert_eq!(rows[1].bounce_rate, 0.0);
    }

    #[test]
    fn no_overdrafts_some_bounces() {
        let (overdrafts, spurious, _) = overdraft_invariant(25, 3);
        assert_eq!(overdrafts, 0, "A2 must prevent overdrafts");
        assert!(spurious > 0, "expected some spurious bounces");
    }

    #[test]
    fn render_works() {
        let rows = premature_debit_decay(&[0], 5, 3);
        assert_eq!(render_decay(&rows).len(), 1);
    }
}
