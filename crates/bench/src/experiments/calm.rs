//! CALM fast-path latency and availability (PERF-C).
//!
//! The monotonicity analyzer ([`relax_quorum::calm::analyze_account`])
//! classifies the bank account's `Credit` monotone at the `{A2}`-only
//! lattice level, so a [`SchedulingPolicy`] may execute it
//! coordination-free: respond against the initial value, append to a
//! client WAL, ship to every replica without waiting — no read phase, no
//! quorum, no timer. This experiment measures what that buys on the
//! discrete-event simulator:
//!
//! * **Latency rows** run the same workload under the all-quorum
//!   baseline and under the analyzer-derived policy with identical
//!   seeds, comparing the monotone ops' p50/p99 latency in sim ticks.
//!   Every row also demands the two runs be *observably equivalent*
//!   (same outcome shapes, merged history, and replica logs).
//! * **Availability rows** partition the client from every replica
//!   before the workload starts and heal afterwards: baseline credits
//!   time out; fast-path credits must stay 100% available and still
//!   converge to every replica once the partition heals and WALs flush.
//!
//! The gate: monotone-op p50 at least [`TARGET_LATENCY_RATIO`]× better
//! than the quorum path, fast-path availability 1.0 under the
//! quorum-blocking partition, and every row equivalent.

use relax_quorum::calm::{analyze_account, SchedulingPolicy};
use relax_quorum::relation::{account_relation, AccountKind};
use relax_quorum::runtime::{AccountInv, BankAccountType, Outcome};
use relax_quorum::{outcome_shapes, ClientConfig, QuorumSystem, VotingAssignment};
use relax_sim::{Fault, FaultSchedule, NetworkConfig, NodeId, Partition, SimTime};

use crate::table::Table;

/// The gate: quorum-path p50 over fast-path p50 for monotone ops.
pub const TARGET_LATENCY_RATIO: f64 = 5.0;

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Replica sites.
    pub replicas: usize,
    /// Invocations the single client submits.
    pub ops: usize,
    /// Every `debit_every`-th invocation is a debit (coordination-
    /// requiring); the rest are credits (monotone).
    pub debit_every: usize,
    /// Partition the client from every replica for the whole workload,
    /// healing afterwards (the availability row).
    pub partitioned: bool,
}

/// The sweep the `exp_calm_fastpath` binary runs: healthy latency rows
/// across replica counts and workload mixes, plus one availability row
/// per replica count.
pub const SWEEP: &[Config] = &[
    Config {
        replicas: 3,
        ops: 256,
        debit_every: 16,
        partitioned: false,
    },
    Config {
        replicas: 3,
        ops: 256,
        debit_every: 4,
        partitioned: false,
    },
    Config {
        replicas: 5,
        ops: 256,
        debit_every: 16,
        partitioned: false,
    },
    Config {
        replicas: 3,
        ops: 128,
        debit_every: 8,
        partitioned: true,
    },
    Config {
        replicas: 5,
        ops: 128,
        debit_every: 8,
        partitioned: true,
    },
];

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct CalmRow {
    /// The configuration.
    pub config: Config,
    /// Monotone (fast-path-eligible) invocations in the workload.
    pub free_ops: u64,
    /// Coordination-requiring invocations in the workload.
    pub quorum_ops: u64,
    /// Baseline monotone-op p50 latency (sim ticks; completed ops only).
    pub base_p50: u64,
    /// Baseline monotone-op p99 latency.
    pub base_p99: u64,
    /// Fast-path monotone-op p50 latency.
    pub fast_p50: u64,
    /// Fast-path monotone-op p99 latency.
    pub fast_p99: u64,
    /// Completed fraction of monotone ops under the baseline.
    pub availability_base: f64,
    /// Completed fraction of monotone ops under the fast path.
    pub availability_fast: f64,
    /// Healthy rows: the two runs observably identical. Availability
    /// rows: credits completed, baseline credits blocked, and every
    /// fast-path entry reached every replica after heal + flush.
    pub equivalent: bool,
}

/// An assignment realizing the `{A2}`-only relation: single-site credit
/// quorums (no forced intersections), majority debit quorums (Debit
/// initial ∩ Debit final). Credits still pay a read and a write
/// round-trip on the quorum path — exactly what the fast path deletes.
fn a2_assignment(n: usize) -> VotingAssignment<AccountKind> {
    let maj = n / 2 + 1;
    VotingAssignment::new(n)
        .with_initial(AccountKind::Credit, 1)
        .with_final(AccountKind::Credit, 1)
        .with_initial(AccountKind::Debit, maj)
        .with_final(AccountKind::Debit, maj)
}

/// The workload: credits of varying amounts, every `debit_every`-th
/// invocation a debit.
fn inv(i: usize, debit_every: usize) -> AccountInv {
    if i % debit_every == debit_every - 1 {
        AccountInv::Debit(1)
    } else {
        AccountInv::Credit(1 + (i % 3) as u32)
    }
}

/// Everything a run leaves behind that a row inspects.
struct RunResult {
    outcomes: Vec<Outcome<relax_queues::AccountOp>>,
    history: Vec<relax_queues::AccountOp>,
    replica_logs: Vec<relax_quorum::Log<relax_queues::AccountOp>>,
    calm_counts: (u64, u64),
}

fn run_one(policy: SchedulingPolicy<AccountKind>, config: Config) -> RunResult {
    let mut sys = QuorumSystem::new(
        BankAccountType,
        config.replicas,
        a2_assignment(config.replicas),
        ClientConfig::default(),
        NetworkConfig::new(3, 10, 0.0),
        0xCA1A + config.replicas as u64,
    )
    .with_scheduling(policy);

    let horizon = 400 * config.ops as u64;
    if config.partitioned {
        let client = vec![NodeId(config.replicas)];
        let replicas: Vec<NodeId> = (0..config.replicas).map(NodeId).collect();
        sys.world_mut().set_schedule(
            FaultSchedule::new()
                .at(
                    SimTime(0),
                    Fault::Partition(Partition::groups(vec![client, replicas])),
                )
                .at(SimTime(horizon), Fault::Heal),
        );
    }
    for i in 0..config.ops {
        sys.submit(inv(i, config.debit_every));
    }
    sys.run_until(SimTime(horizon + 400));
    // Post-heal: flush WALs so fast-path entries swallowed by the
    // partition converge, then quiesce.
    sys.flush_wals();
    sys.run_until(SimTime(horizon + 800));

    RunResult {
        outcomes: sys.outcomes().to_vec(),
        history: sys.merged_history().into_ops(),
        replica_logs: (0..config.replicas)
            .map(|i| sys.replica_log(i).clone())
            .collect(),
        calm_counts: sys.calm_op_counts(),
    }
}

/// Latencies (sim ticks) of the completed monotone ops, ascending.
fn credit_latencies(config: Config, outcomes: &[Outcome<relax_queues::AccountOp>]) -> Vec<u64> {
    let mut lat: Vec<u64> = outcomes
        .iter()
        .enumerate()
        .filter(|(i, _)| matches!(inv(*i, config.debit_every), AccountInv::Credit(_)))
        .filter_map(|(_, o)| match o {
            Outcome::Completed { latency, .. } => Some(*latency),
            _ => None,
        })
        .collect();
    lat.sort_unstable();
    lat
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let ix = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[ix]
}

/// Builds, loads, and runs one sweep point end to end — baseline and
/// fast-path runs over the identical workload and seed.
pub fn measure(config: Config) -> CalmRow {
    let report = analyze_account(&account_relation(false, true));
    let policy = SchedulingPolicy::from_report(&report);
    assert!(policy.is_free(AccountKind::Credit), "analyzer regressed");
    assert!(!policy.is_free(AccountKind::Debit), "analyzer unsound");

    let base = run_one(SchedulingPolicy::all_quorum(), config);
    let fast = run_one(policy, config);

    let free_ops = (0..config.ops)
        .filter(|&i| matches!(inv(i, config.debit_every), AccountInv::Credit(_)))
        .count() as u64;
    let quorum_ops = config.ops as u64 - free_ops;
    debug_assert_eq!(fast.calm_counts, (free_ops, quorum_ops));
    debug_assert_eq!(base.calm_counts, (0, config.ops as u64));

    let base_lat = credit_latencies(config, &base.outcomes);
    let fast_lat = credit_latencies(config, &fast.outcomes);
    let availability_base = base_lat.len() as f64 / free_ops as f64;
    let availability_fast = fast_lat.len() as f64 / free_ops as f64;

    let equivalent = if config.partitioned {
        // Graceful degradation, not bit-equality: fast credits all
        // completed, baseline credits all blocked by the partition, and
        // after heal + flush every replica holds every credit.
        availability_fast == 1.0
            && availability_base == 0.0
            && fast.replica_logs.iter().all(|log| {
                log.to_history()
                    .into_ops()
                    .iter()
                    .filter(|op| matches!(op, relax_queues::AccountOp::Credit(_)))
                    .count() as u64
                    == free_ops
            })
    } else {
        outcome_shapes(&base.outcomes) == outcome_shapes(&fast.outcomes)
            && base.history == fast.history
            && base.replica_logs == fast.replica_logs
    };

    CalmRow {
        config,
        free_ops,
        quorum_ops,
        base_p50: quantile(&base_lat, 0.5),
        base_p99: quantile(&base_lat, 0.99),
        fast_p50: quantile(&fast_lat, 0.5),
        fast_p99: quantile(&fast_lat, 0.99),
        availability_base,
        availability_fast,
        equivalent,
    }
}

/// Quorum-over-fast p50 ratio for one healthy row (fast p50 of zero
/// ticks counts as one, keeping the ratio finite and conservative).
pub fn latency_ratio(row: &CalmRow) -> f64 {
    row.base_p50 as f64 / (row.fast_p50.max(1)) as f64
}

/// The worst (smallest) healthy-row latency ratio — the gated number.
pub fn gate_latency_ratio(rows: &[CalmRow]) -> f64 {
    rows.iter()
        .filter(|r| !r.config.partitioned)
        .map(latency_ratio)
        .fold(f64::INFINITY, f64::min)
}

/// The worst fast-path availability across the partitioned rows.
pub fn gate_availability(rows: &[CalmRow]) -> f64 {
    rows.iter()
        .filter(|r| r.config.partitioned)
        .map(|r| r.availability_fast)
        .fold(1.0, f64::min)
}

/// Measures every sweep point and renders the table.
pub fn run(sweep: &[Config]) -> (Table, Vec<CalmRow>) {
    let rows: Vec<CalmRow> = sweep.iter().map(|&c| measure(c)).collect();
    let mut t = Table::new([
        "replicas",
        "ops",
        "debit every",
        "faults",
        "free",
        "quorum",
        "base p50",
        "fast p50",
        "ratio",
        "avail base",
        "avail fast",
        "verdict",
    ]);
    for r in &rows {
        t.row([
            r.config.replicas.to_string(),
            r.config.ops.to_string(),
            r.config.debit_every.to_string(),
            if r.config.partitioned {
                "partition".to_string()
            } else {
                "none".to_string()
            },
            r.free_ops.to_string(),
            r.quorum_ops.to_string(),
            r.base_p50.to_string(),
            r.fast_p50.to_string(),
            format!("{:.1}", latency_ratio(r)),
            format!("{:.2}", r.availability_base),
            format!("{:.2}", r.availability_fast),
            if r.equivalent {
                "EQUIVALENT".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    (t, rows)
}

/// Renders the rows as the `BENCH_calm_fastpath.json` payload.
pub fn to_json(rows: &[CalmRow]) -> String {
    let ratio = gate_latency_ratio(rows);
    let availability = gate_availability(rows);
    let all_equivalent = rows.iter().all(|r| r.equivalent);
    let calm_fast_ops: u64 = rows.iter().map(|r| r.free_ops).sum();
    let calm_quorum_ops: u64 = rows.iter().map(|r| r.quorum_ops).sum();
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"replicas\":{},\"ops\":{},\"debit_every\":{},\"partitioned\":{},\
                 \"free_ops\":{},\"quorum_ops\":{},\
                 \"base_p50\":{},\"base_p99\":{},\"fast_p50\":{},\"fast_p99\":{},\
                 \"availability_base\":{:.4},\"availability_fast\":{:.4},\
                 \"equivalent\":{}}}",
                r.config.replicas,
                r.config.ops,
                r.config.debit_every,
                r.config.partitioned,
                r.free_ops,
                r.quorum_ops,
                r.base_p50,
                r.base_p99,
                r.fast_p50,
                r.fast_p99,
                r.availability_base,
                r.availability_fast,
                r.equivalent
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"calm_fastpath\",\
         \"workload\":\"bank_account\",\"relation\":\"A2\",\
         \"calm_fast_ops\":{calm_fast_ops},\"calm_quorum_ops\":{calm_quorum_ops},\
         \"rows\":[{}],\
         \"gate_latency_ratio\":{ratio:.2},\
         \"availability_fast\":{availability:.4},\
         \"all_equivalent\":{all_equivalent},\
         \"target_latency_ratio\":{TARGET_LATENCY_RATIO:.1},\
         \"within_target\":{}}}\n",
        row_json.join(","),
        ratio >= TARGET_LATENCY_RATIO && availability == 1.0 && all_equivalent
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(partitioned: bool) -> Config {
        Config {
            replicas: 3,
            ops: 24,
            debit_every: 8,
            partitioned,
        }
    }

    #[test]
    fn healthy_row_is_equivalent_with_a_wide_latency_gap() {
        let row = measure(small(false));
        assert!(row.equivalent, "healthy fast path diverged");
        assert_eq!(row.free_ops + row.quorum_ops, 24);
        assert_eq!(row.fast_p50, 0, "fast path waits on nothing");
        assert!(
            latency_ratio(&row) >= TARGET_LATENCY_RATIO,
            "ratio {:.1} below target (base p50 {})",
            latency_ratio(&row),
            row.base_p50
        );
    }

    #[test]
    fn partitioned_row_keeps_free_ops_available() {
        let row = measure(small(true));
        assert_eq!(row.availability_fast, 1.0);
        assert_eq!(row.availability_base, 0.0);
        assert!(row.equivalent, "post-heal convergence failed");
    }

    #[test]
    fn json_payload_carries_the_gate() {
        let rows = vec![measure(small(false)), measure(small(true))];
        let json = to_json(&rows);
        assert!(json.contains("\"bench\":\"calm_fastpath\""));
        assert!(json.contains("\"gate_latency_ratio\":"));
        assert!(json.contains("\"availability_fast\":1.0000"));
        assert!(json.contains("\"all_equivalent\":true"));
        assert!(json.contains("\"target_latency_ratio\":5.0"));
        assert!(json.contains("\"within_target\":true"));
    }
}
