//! The paper's graceful-degradation story, observed live (§3.3 + §5).
//!
//! A replicated taxi queue is configured with quorums that hold `Q1`
//! (every Deq's initial quorum intersects every Enq's final quorum) but
//! deliberately violate `Q2` (Deq quorums need not intersect each
//! other). Per Theorem 4's lattice, the faithful priority queue `PQ`
//! may then degrade to `MPQ` — requests can be served *more than once*
//! — but never further.
//!
//! The scenario drives exactly that degradation with a timed fault
//! schedule, while three observability layers watch:
//!
//! * a structured sim-time trace (sends, drops, faults, quorum
//!   assembly/failure, level transitions) in a bounded ring buffer;
//! * a metrics [`Registry`] (availability counters, latency histograms);
//! * an online [`DegradationMonitor`] classifying the completion order
//!   against the `PQ → MPQ → OPQ → DegenPQ` lattice and emitting a
//!   witnessed transition event the moment `PQ` dies.

use relax_quorum::relation::QueueKind;
use relax_quorum::runtime::{Outcome, QueueInv, TaxiQueueType};
use relax_quorum::{queue_lattice_monitor, ClientConfig, QuorumSystem, VotingAssignment};
use relax_sim::{Fault, FaultSchedule, NetworkConfig, NodeId, Partition, SimTime};
use relax_trace::{Event, LevelTransition, Registry};

use relax_queues::QueueOp;

/// Everything the partition scenario produced, for printing or asserting.
#[derive(Debug)]
pub struct ScenarioReport {
    /// The full structured trace, one event per line when exported.
    pub trace_jsonl: String,
    /// The trace as typed events (sim-time order).
    pub events: Vec<Event>,
    /// Availability counters and latency histograms.
    pub registry: Registry,
    /// Level transitions the monitor emitted (expected: `PQ → MPQ`).
    pub transitions: Vec<LevelTransition>,
    /// The completion-order history the monitor classified.
    pub observed_ops: Vec<QueueOp>,
    /// The lattice level the history sits at after the run.
    pub current_level: Option<String>,
    /// Per-client outcome list (one client here).
    pub outcomes: Vec<Outcome<QueueOp>>,
}

/// The quorum assignment that *invites* duplication: `Q1` holds
/// (`enq_final + deq_initial > n`), `Q2` does not
/// (`deq_initial + deq_final <= n`).
#[must_use]
pub fn q1_only_assignment(n: usize) -> VotingAssignment<QueueKind> {
    VotingAssignment::new(n)
        .with_initial(QueueKind::Enq, 1)
        .with_final(QueueKind::Enq, n)
        .with_initial(QueueKind::Deq, 1)
        .with_final(QueueKind::Deq, 1)
}

/// Runs the partition scenario and returns every observable artifact.
///
/// Timeline (3 replicas `0..3`, one client at node `3`; client timeout
/// 200):
///
/// 1. `t=0` — `Enq(5)` while fully connected: written to all three
///    replicas.
/// 2. `t=200` — partition `{client, r0} | {r1, r2}`; `Deq` reads and
///    writes only `r0`, dequeuing request `5`.
/// 3. `t=400` — partition flips to `{client, r1} | {r0, r2}`; the next
///    `Deq`'s initial quorum (`r1`) never saw the first dequeue, so
///    request `5` is served **again** — the monitor kills `PQ` and
///    reports the duplicate `Deq` as witness.
/// 4. `t=600` — `r1` (the client's only reachable replica) crashes; the
///    next `Deq` cannot assemble a quorum and times out
///    (`quorum_failed` in the trace, a failure on the availability
///    counter).
/// 5. `t=900` — heal + recover; a final `Enq(9)` and `Deq` complete,
///    showing the system is available again and still within `MPQ`.
#[must_use]
pub fn run_partition_scenario(seed: u64) -> ScenarioReport {
    let n = 3;
    let client = NodeId(n);
    let schedule = FaultSchedule::new()
        .at(
            SimTime(200),
            Fault::Partition(Partition::groups(vec![
                vec![client, NodeId(0)],
                vec![NodeId(1), NodeId(2)],
            ])),
        )
        .at(
            SimTime(400),
            Fault::Partition(Partition::groups(vec![
                vec![client, NodeId(1)],
                vec![NodeId(0), NodeId(2)],
            ])),
        )
        .at(SimTime(600), Fault::Crash(NodeId(1)))
        .at(SimTime(900), Fault::Heal)
        .at(SimTime(900), Fault::Recover(NodeId(1)));

    let mut sys = QuorumSystem::new(
        TaxiQueueType,
        n,
        q1_only_assignment(n),
        ClientConfig::default(),
        NetworkConfig::new(1, 10, 0.0),
        seed,
    )
    .with_trace(4096)
    .with_monitor(queue_lattice_monitor());
    sys.world_mut().set_schedule(schedule);

    // 1: a request arrives while everything is up.
    sys.submit(QueueInv::Enq(5));
    sys.run_until(SimTime(200));
    // 2: partitioned with r0 only — serve the request.
    sys.submit(QueueInv::Deq);
    sys.run_until(SimTime(400));
    // 3: partitioned with r1 only — serve it *again* (duplicate).
    sys.submit(QueueInv::Deq);
    sys.run_until(SimTime(600));
    // 4: r1 crashes — no quorum, timeout.
    sys.submit(QueueInv::Deq);
    sys.run_until(SimTime(900));
    // 5: healed — normal service resumes.
    sys.submit(QueueInv::Enq(9));
    sys.submit(QueueInv::Deq);
    sys.run_to_quiescence(1_000_000);

    let mut registry = Registry::new();
    let outcomes: Vec<Outcome<QueueOp>> = sys.outcomes().to_vec();
    for o in &outcomes {
        let name = match o {
            Outcome::Completed { op, .. } => match op {
                QueueOp::Enq(_) => "enq",
                QueueOp::Deq(_) => "deq",
            },
            // Refusals and timeouts in this scenario are all dequeues.
            Outcome::Refused { .. } | Outcome::TimedOut => "deq",
        };
        o.record_to(&mut registry, name);
    }

    let monitor = sys.monitor().expect("monitor attached");
    let transitions = monitor.transitions().to_vec();
    let current_level = monitor.current_level().map(str::to_owned);
    let observed_ops = completed_ops(&outcomes);
    let tracer = sys.world().tracer();
    ScenarioReport {
        trace_jsonl: tracer.export_jsonl(),
        events: tracer.events().collect(),
        registry,
        transitions,
        observed_ops,
        current_level,
        outcomes,
    }
}

fn completed_ops(outcomes: &[Outcome<QueueOp>]) -> Vec<QueueOp> {
    outcomes
        .iter()
        .filter_map(|o| match o {
            Outcome::Completed { op, .. } => Some(*op),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_automata::{History, ObjectAutomaton};
    use relax_queues::{MpqAutomaton, PQueueAutomaton};
    use relax_trace::EventKind;

    fn report() -> ScenarioReport {
        run_partition_scenario(0x5EED)
    }

    #[test]
    fn trace_is_valid_jsonl_in_sim_time_order() {
        let r = report();
        assert!(!r.events.is_empty());
        let mut lines = r.trace_jsonl.lines();
        let header = lines.next().expect("header line");
        assert!(header.contains("\"kind\":\"trace_header\""), "{header:?}");
        let mut last = 0;
        for (line, ev) in lines.by_ref().zip(&r.events) {
            assert!(line.starts_with("{\"t\":"), "line {line:?}");
            assert!(line.ends_with('}'), "line {line:?}");
            assert!(ev.time >= last, "out of order at seq {}", ev.seq);
            last = ev.time;
        }
        assert_eq!(r.trace_jsonl.lines().count(), r.events.len() + 1);
        // The exported form re-ingests losslessly.
        let parsed = relax_trace::read_trace(&r.trace_jsonl).expect("re-ingest");
        assert_eq!(parsed.events, r.events);
    }

    #[test]
    fn trace_contains_crash_partition_and_quorum_failure() {
        let r = report();
        let has = |f: &dyn Fn(&EventKind) -> bool| r.events.iter().any(|e| f(&e.kind));
        assert!(has(&|k| matches!(k, EventKind::NodeCrashed { node: 1 })));
        assert!(has(&|k| matches!(k, EventKind::NodeRecovered { node: 1 })));
        assert!(has(&|k| matches!(k, EventKind::PartitionSet { .. })));
        assert!(has(&|k| matches!(k, EventKind::PartitionHealed)));
        assert!(has(&|k| matches!(k, EventKind::QuorumFailed { .. })));
        assert!(has(&|k| matches!(
            k,
            EventKind::MessageDropped {
                cause: relax_trace::DropCause::Partitioned,
                ..
            }
        )));
    }

    #[test]
    fn registry_reports_availability_and_latency_quantiles() {
        let mut r = report();
        let deq = r.registry.get_counter("deq").expect("deq counter");
        // Four Deq attempts: two duplicates complete, one times out, one
        // final post-heal attempt runs (Completed or Refused — both are
        // "available").
        assert_eq!(deq.total(), 4);
        assert_eq!(deq.failures(), 1);
        let enq = r.registry.get_counter("enq").expect("enq counter");
        assert_eq!(enq.total(), 2);
        assert_eq!(enq.failures(), 0);
        let h = r
            .registry
            .get_histogram("deq_latency")
            .cloned()
            .expect("deq latency histogram");
        assert!(!h.is_empty());
        let mut h = h;
        let p50 = h.p50().unwrap();
        let p99 = h.p99().unwrap();
        assert!(p50 <= p99);
        // The summary text mentions both series.
        let summary = r.registry.summary();
        assert!(summary.contains("deq"));
        assert!(summary.contains("deq_latency"));
    }

    #[test]
    fn monitor_reports_pq_to_mpq_transition_with_duplicate_witness() {
        let r = report();
        assert_eq!(r.transitions.len(), 1, "transitions: {:?}", r.transitions);
        let t = &r.transitions[0];
        // A duplicate kills both duplicate-free levels at once: the
        // faithful queue *and* the out-of-order queue.
        assert_eq!(t.left, vec!["PQ".to_string(), "OPQ".to_string()]);
        assert_eq!(t.now.as_deref(), Some("MPQ"));
        assert!(t.witness.contains("Deq"), "witness: {}", t.witness);
        assert_eq!(r.current_level.as_deref(), Some("MPQ"));
        // The transition also landed in the trace.
        assert!(r.events.iter().any(|e| matches!(
            &e.kind,
            EventKind::LevelTransition(t) if t.now.as_deref() == Some("MPQ")
        )));
    }

    #[test]
    fn witness_history_rejected_by_pq_accepted_by_mpq() {
        // The acceptance check behind the transition: replay the observed
        // completion order up to and including the witness op. PQ (the
        // faithful queue) must reject it; MPQ (duplication allowed) must
        // accept it.
        let r = report();
        let t = &r.transitions[0];
        let prefix: Vec<QueueOp> = r.observed_ops[..=t.op_index].to_vec();
        assert_eq!(
            format!("{:?}", prefix[t.op_index]),
            t.witness,
            "witness is the op at op_index"
        );
        let h = History::from(prefix);
        assert!(!PQueueAutomaton::new().accepts(&h), "PQ must reject {h:?}");
        assert!(MpqAutomaton::new().accepts(&h), "MPQ must accept {h:?}");
    }

    #[test]
    fn duplicate_service_is_visible_in_completed_ops() {
        let r = report();
        let dups = r
            .observed_ops
            .iter()
            .filter(|op| matches!(op, QueueOp::Deq(5)))
            .count();
        assert_eq!(dups, 2, "request 5 served twice: {:?}", r.observed_ops);
    }
}
