//! Behavior-complexity growth curves: `|L_n|` per lattice point.
//!
//! The relaxation lattice orders behaviors by language inclusion; this
//! experiment quantifies *how much* behavior each relaxation admits by
//! counting accepted histories per length. The gap between curves is the
//! "size" of the anomaly space each constraint rules out — the
//! complexity cost the paper says must be weighed against the
//! constraint's availability cost (§5: "the designer must compare the
//! costs of satisfying the constraints with the complexity of the
//! unconstrained behavior").

use relax_automata::language_sizes;
use relax_core::lattices::eta_prime::TaxiLatticeEtaPrime;
use relax_core::lattices::taxi::{TaxiLattice, TaxiPoint};
use relax_queues::{queue_alphabet, Item, SemiqueueAutomaton};

use crate::table::Table;

/// Growth table for the taxi lattice (η and η′ side by side).
pub fn taxi_growth(items: &[Item], max_len: usize) -> Table {
    let alphabet = queue_alphabet(items);
    let eta = TaxiLattice::new();
    let eta_prime = TaxiLatticeEtaPrime::new();
    let mut header = vec!["point".to_string(), "η/η′".to_string()];
    for n in 0..=max_len {
        header.push(format!("n={n}"));
    }
    let mut t = Table::new(header);
    for point in TaxiPoint::all() {
        for (label, sizes) in [
            ("η", language_sizes(&eta.qca(point), &alphabet, max_len)),
            (
                "η′",
                language_sizes(&eta_prime.qca(point), &alphabet, max_len),
            ),
        ] {
            let mut row = vec![
                format!("Q1={} Q2={}", point.q1 as u8, point.q2 as u8),
                label.to_string(),
            ];
            row.extend(sizes.iter().map(usize::to_string));
            t.row(row);
        }
    }
    t
}

/// Growth table for the semiqueue chain `k = 1..=max_k`.
pub fn semiqueue_growth(items: &[Item], max_len: usize, max_k: usize) -> Table {
    let alphabet = queue_alphabet(items);
    let mut header = vec!["behavior".to_string()];
    for n in 0..=max_len {
        header.push(format!("n={n}"));
    }
    let mut t = Table::new(header);
    for k in 1..=max_k {
        let sizes = language_sizes(&SemiqueueAutomaton::new(k), &alphabet, max_len);
        let mut row = vec![format!("Semiqueue_{k}")];
        row.extend(sizes.iter().map(usize::to_string));
        t.row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use relax_automata::language_sizes;
    use relax_core::lattices::taxi::TaxiLattice;

    #[test]
    fn growth_is_monotone_down_the_lattice() {
        let alphabet = queue_alphabet(&[1, 2]);
        let lattice = TaxiLattice::new();
        let top = language_sizes(&lattice.qca(TaxiPoint { q1: true, q2: true }), &alphabet, 5);
        let bottom = language_sizes(
            &lattice.qca(TaxiPoint {
                q1: false,
                q2: false,
            }),
            &alphabet,
            5,
        );
        for (t, b) in top.iter().zip(&bottom) {
            assert!(t <= b);
        }
        assert!(top.iter().sum::<usize>() < bottom.iter().sum::<usize>());
    }

    #[test]
    fn semiqueue_growth_monotone_in_k() {
        let alphabet = queue_alphabet(&[1, 2]);
        let s1 = language_sizes(&SemiqueueAutomaton::new(1), &alphabet, 5);
        let s3 = language_sizes(&SemiqueueAutomaton::new(3), &alphabet, 5);
        for (a, b) in s1.iter().zip(&s3) {
            assert!(a <= b);
        }
    }

    #[test]
    fn tables_render() {
        assert_eq!(taxi_growth(&[1, 2], 3).len(), 8);
        assert_eq!(semiqueue_growth(&[1, 2], 3, 3).len(), 3);
    }
}
