//! Experiment implementations, one module per paper artifact.

pub mod account;
pub mod antientropy;
pub mod availability;
pub mod calm;
pub mod campaign;
pub mod concurrency;
pub mod degradation;
pub mod eta_ablation;
pub mod figures;
pub mod growth;
pub mod latency;
pub mod lattices;
pub mod markov;
pub mod par;
pub mod prob;
pub mod profile;
pub mod realtime;
pub mod regress;
pub mod scaling;
pub mod serialdep;
pub mod symmetry;
pub mod theorem4;
pub mod throughput;
pub mod voting;
