//! Figure 5-1's "Latency" cost, made measurable (§3.4).
//!
//! "The larger an operation's quorums, the longer it takes to execute
//! that operation. Rather than forcing customers to wait for all the
//! updates to complete, the bank's ATMs might … announce success as soon
//! as any update is complete." This experiment measures ATM-perceived
//! credit latency as the final Credit quorum grows from 1 (asynchronous
//! propagation, `A1` relaxed) to `n` (fully synchronous), against the
//! analytic order-statistic prediction.

use relax_core::cost::expected_latency;
use relax_quorum::relation::AccountKind;
use relax_quorum::runtime::{AccountInv, BankAccountType, Outcome};
use relax_quorum::{ClientConfig, QuorumSystem, VotingAssignment};
use relax_sim::NetworkConfig;

use crate::table::Table;

/// One latency row.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// Final Credit quorum size.
    pub final_quorum: usize,
    /// Mean measured credit latency (ticks).
    pub measured_mean: f64,
    /// Analytic expectation (read phase + write phase, order
    /// statistics of uniform delays).
    pub analytic: f64,
}

/// Sweeps the final Credit quorum size over `1..=n`.
pub fn sweep(n: usize, trials: u32, seed: u64) -> Vec<LatencyRow> {
    let (min_d, max_d) = (1u64, 20u64);
    (1..=n)
        .map(|fq| {
            let maj = n / 2 + 1;
            let assignment = VotingAssignment::new(n)
                .with_initial(AccountKind::Credit, 1)
                .with_final(AccountKind::Credit, fq)
                .with_initial(AccountKind::Debit, maj)
                .with_final(AccountKind::Debit, maj);
            let mut total = 0u64;
            let mut count = 0u32;
            for trial in 0..trials {
                let mut sys = QuorumSystem::new(
                    BankAccountType,
                    n,
                    assignment.clone(),
                    ClientConfig { timeout: 2_000 },
                    NetworkConfig::new(min_d, max_d, 0.0),
                    seed.wrapping_add(u64::from(trial).wrapping_mul(6_364_136_223_846_793_005)),
                );
                sys.submit(AccountInv::Credit(1));
                sys.run_to_quiescence(100_000);
                if let Some(Outcome::Completed { latency, .. }) = sys.outcomes().first() {
                    total += latency;
                    count += 1;
                }
            }
            // Analytic: one round trip to the fastest replica (read
            // quorum 1) plus a write phase waiting for the fq-th ack.
            // Each phase is request+response, so two uniform delays per
            // hop; approximate with 2× the order statistic per phase.
            let read = 2.0 * expected_latency(n, 1, min_d as f64, max_d as f64);
            let write = 2.0 * expected_latency(n, fq, min_d as f64, max_d as f64);
            LatencyRow {
                final_quorum: fq,
                measured_mean: if count > 0 {
                    total as f64 / f64::from(count)
                } else {
                    f64::NAN
                },
                analytic: read + write,
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(rows: &[LatencyRow]) -> Table {
    let mut t = Table::new([
        "Credit final quorum",
        "measured mean latency",
        "analytic (order stat)",
    ]);
    for r in rows {
        t.row([
            r.final_quorum.to_string(),
            format!("{:.1}", r.measured_mean),
            format!("{:.1}", r.analytic),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_final_quorum() {
        let rows = sweep(5, 30, 99);
        assert!(rows.first().unwrap().measured_mean < rows.last().unwrap().measured_mean);
        // Monotone analytic curve.
        for w in rows.windows(2) {
            assert!(w[0].analytic < w[1].analytic);
        }
    }

    #[test]
    fn measured_roughly_matches_analytic() {
        let rows = sweep(3, 60, 3);
        for r in &rows {
            let rel = (r.measured_mean - r.analytic).abs() / r.analytic;
            assert!(
                rel < 0.35,
                "fq={}: measured {} vs analytic {}",
                r.final_quorum,
                r.measured_mean,
                r.analytic
            );
        }
    }

    #[test]
    fn render_rows() {
        let rows = sweep(3, 5, 1);
        assert_eq!(render(&rows).len(), 3);
    }
}
