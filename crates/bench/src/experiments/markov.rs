//! The probabilistic interface end-to-end (§2.3): a Markov environment
//! over the taxi lattice's constraint states.
//!
//! "Separate functional and probabilistic models can be combined without
//! compromising the expressive power of either." Here the functional
//! model is the taxi relaxation lattice; the probabilistic model is a
//! Markov chain over its four constraint states (crash/repair processes
//! independently toggling `Q1` and `Q2`). The stationary distribution
//! gives the long-run fraction of time spent in each *behavior*, and the
//! expected quality of a dequeue.

use relax_core::lattices::taxi::TaxiPoint;
use relax_core::prob::MarkovChain;

use crate::table::Table;

/// Builds the 4-state chain from per-step fault/repair probabilities for
/// each constraint (independent toggling). States are indexed
/// `[{Q1,Q2}, {Q1}, {Q2}, ∅]`.
pub fn taxi_environment_chain(p_fail: f64, p_repair: f64) -> MarkovChain {
    // Per-constraint 2-state chain: up→down with p_fail, down→up with
    // p_repair. The 4-state product chain is the tensor of two copies.
    let up = [1.0 - p_fail, p_fail]; // [stay up, go down]
    let down = [p_repair, 1.0 - p_repair]; // [come up, stay down]
    let step = |held: bool| if held { up } else { down };
    let states = [(true, true), (true, false), (false, true), (false, false)];
    let transition = states
        .iter()
        .map(|&(q1, q2)| {
            states
                .iter()
                .map(|&(r1, r2)| {
                    let t1 = step(q1)[usize::from(!r1)];
                    let t2 = step(q2)[usize::from(!r2)];
                    t1 * t2
                })
                .collect()
        })
        .collect();
    MarkovChain::new(transition)
}

/// One row: a lattice point with its stationary probability.
#[derive(Debug, Clone)]
pub struct MarkovRow {
    /// The constraint state.
    pub point: TaxiPoint,
    /// Long-run fraction of time in this state.
    pub stationary: f64,
}

/// Computes the stationary behavior mix.
pub fn stationary_mix(p_fail: f64, p_repair: f64) -> Vec<MarkovRow> {
    let chain = taxi_environment_chain(p_fail, p_repair);
    let pi = chain.stationary(500);
    let points = [
        TaxiPoint { q1: true, q2: true },
        TaxiPoint {
            q1: true,
            q2: false,
        },
        TaxiPoint {
            q1: false,
            q2: true,
        },
        TaxiPoint {
            q1: false,
            q2: false,
        },
    ];
    points
        .iter()
        .zip(pi)
        .map(|(&point, stationary)| MarkovRow { point, stationary })
        .collect()
}

/// Renders the mix with the behaviors' names and the headline long-run
/// metric: the probability that a random dequeue is served best-first
/// (states where `Q1` holds never serve out of order).
pub fn render(rows: &[MarkovRow]) -> (Table, f64) {
    let mut t = Table::new(["constraint state", "behavior", "long-run fraction"]);
    let mut in_order = 0.0;
    for r in rows {
        if r.point.q1 {
            in_order += r.stationary;
        }
        t.row([
            format!("Q1={} Q2={}", r.point.q1 as u8, r.point.q2 as u8),
            r.point.behavior_name().to_string(),
            format!("{:.4}", r.stationary),
        ]);
    }
    (t, in_order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_chain_is_stochastic_and_converges() {
        let rows = stationary_mix(0.1, 0.5);
        let total: f64 = rows.iter().map(|r| r.stationary).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Per-constraint stationary up-probability is 5/6; product
        // independence gives (5/6)^2 for the top state.
        let top = rows[0].stationary;
        assert!((top - (5.0 / 6.0) * (5.0 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn more_repair_means_more_preferred_behavior() {
        let slow = stationary_mix(0.1, 0.2)[0].stationary;
        let fast = stationary_mix(0.1, 0.8)[0].stationary;
        assert!(fast > slow);
    }

    #[test]
    fn render_reports_in_order_fraction() {
        let rows = stationary_mix(0.1, 0.5);
        let (t, in_order) = render(&rows);
        assert_eq!(t.len(), 4);
        // P(Q1 holds) = 5/6 at stationarity.
        assert!((in_order - 5.0 / 6.0).abs() < 1e-9);
    }
}
