//! Definition 3 checks: `{Q1, Q2}` is a minimal serial dependency
//! relation for the priority queue, and `{A1, A2}` for the account.

use relax_automata::ObjectAutomaton;
use relax_queues::ops::account_alphabet;
use relax_queues::{queue_alphabet, AccountAutomaton, PQueueAutomaton};
use relax_quorum::relation::{account_relation, queue_relation, HasKind, IntersectionRelation};
use relax_quorum::serialdep::check_serial_dependency;

use crate::table::Table;

fn verdict<A>(
    automaton: &A,
    relation: &IntersectionRelation<<A::Op as HasKind>::Kind>,
    alphabet: &[A::Op],
    max_len: usize,
) -> String
where
    A: ObjectAutomaton,
    A::Op: HasKind,
{
    match check_serial_dependency(automaton, relation, alphabet, max_len) {
        Ok(()) => "serial dependency ✓".to_string(),
        Err(v) => format!("violated at H={:?} p={:?}", v.history.ops(), v.op),
    }
}

/// The priority-queue table: each subrelation of `{Q1, Q2}` checked.
pub fn queue_table(max_len: usize) -> Table {
    let alphabet = queue_alphabet(&[1, 2]);
    let a = PQueueAutomaton::new();
    let mut t = Table::new(["relation", "verdict (bounded)"]);
    for (label, q1, q2) in [
        ("{Q1, Q2}", true, true),
        ("{Q1}", true, false),
        ("{Q2}", false, true),
        ("∅", false, false),
    ] {
        t.row([
            label.to_string(),
            verdict(&a, &queue_relation(q1, q2), &alphabet, max_len),
        ]);
    }
    t
}

/// The account table: each subrelation of `{A1, A2}` checked.
pub fn account_table(max_len: usize) -> Table {
    let alphabet = account_alphabet(&[1, 2]);
    let a = AccountAutomaton::new();
    let mut t = Table::new(["relation", "verdict (bounded)"]);
    for (label, a1, a2) in [
        ("{A1, A2}", true, true),
        ("{A1}", true, false),
        ("{A2}", false, true),
        ("∅", false, false),
    ] {
        t.row([
            label.to_string(),
            verdict(&a, &account_relation(a1, a2), &alphabet, max_len),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_full_relation_passes_subrelations_fail() {
        let t = queue_table(4);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].contains('✓'), "{}", lines[2]);
        for line in &lines[3..6] {
            assert!(line.contains("violated"), "{line}");
        }
    }

    #[test]
    fn account_full_relation_passes() {
        let t = account_table(4);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].contains('✓'), "{}", lines[2]);
        // Dropping A2 admits double spends: violated.
        assert!(lines[3].contains("violated"), "{}", lines[3]);
    }
}
