//! Delta-gossip runtime throughput: full-log vs delta replication.
//!
//! Runs the same single-client taxi-queue workload through the quorum
//! runtime twice per history length — once in the retained baseline
//! configuration ([`ReplicationMode::FullLog`], memoized view evaluation
//! off) and once in the optimized one ([`ReplicationMode::Delta`] with
//! memoization) — and records wall-clock time, wire bytes, and message
//! counts for each. Both runs carry the wire-size payload sizer, so the
//! measured path is the instrumented one. (The lattice degradation
//! monitor is *not* attached here: its MPQ frontier can branch on every
//! `Deq`, which is exponential on thousand-op histories; monitor-
//! transition equivalence is covered by the `delta_equivalence`
//! differential tests on monitor-sized workloads.)
//!
//! Every row also checks *observable equivalence*: identical outcomes,
//! identical merged history, and identical message counts. A speedup
//! that changes what the protocol does is not an optimization;
//! `within_target` in the JSON payload requires equivalence alongside
//! the speed and byte gates.
//!
//! The deepest history length is the CI gate: delta + memoization must
//! be at least [`TARGET_SPEEDUP`]× faster and ship at most
//! 1/[`TARGET_BYTES_RATIO`] of the bytes.

use std::time::Instant;

use relax_queues::QueueOp;
use relax_quorum::relation::QueueKind;
use relax_quorum::runtime::{Outcome, QueueInv, TaxiQueueType};
use relax_quorum::{ClientConfig, QuorumSystem, ReplicationMode, VotingAssignment};
use relax_sim::NetworkConfig;

use crate::table::Table;

/// Majority-Deq taxi-queue assignment (the latency experiment's shape):
/// Enq records at `n - maj + 1` sites so every Deq initial quorum sees
/// every earlier Enq.
fn taxi_assignment(n: usize) -> VotingAssignment<QueueKind> {
    let maj = n / 2 + 1;
    VotingAssignment::new(n)
        .with_initial(QueueKind::Deq, maj)
        .with_final(QueueKind::Deq, maj)
        .with_initial(QueueKind::Enq, 1)
        .with_final(QueueKind::Enq, n - maj + 1)
}

/// The gate: optimized-path speedup over the full-log baseline required
/// at the deepest history length.
pub const TARGET_SPEEDUP: f64 = 5.0;

/// The gate: baseline-to-optimized wire-byte ratio required at the
/// deepest history length.
pub const TARGET_BYTES_RATIO: f64 = 10.0;

/// Replica anti-entropy interval used by both runs. Frequent enough
/// that gossip traffic dominates the full-log byte bill on long
/// histories, as it would in a deployed system.
pub const GOSSIP_INTERVAL: u64 = 40;

/// What one configured run of the workload observed.
#[derive(Debug, Clone, PartialEq)]
struct RunObservables {
    outcomes: Vec<Outcome<QueueOp>>,
    history: Vec<QueueOp>,
    messages: u64,
}

/// One measured history length.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Operations submitted (and completed) per run.
    pub history_len: usize,
    /// Baseline (full-log, unmemoized) wall time.
    pub baseline_ns: u128,
    /// Optimized (delta, memoized) wall time.
    pub optimized_ns: u128,
    /// `baseline_ns / optimized_ns`.
    pub speedup: f64,
    /// Wire bytes shipped by the baseline run.
    pub baseline_bytes: u64,
    /// Wire bytes shipped by the optimized run.
    pub optimized_bytes: u64,
    /// `baseline_bytes / optimized_bytes`.
    pub bytes_ratio: f64,
    /// Messages sent (identical across modes when `equivalent`).
    pub messages: u64,
    /// Did the two runs observe identical outcomes, merged history, and
    /// message counts?
    pub equivalent: bool,
}

/// Runs `history_len` queue operations through one runtime
/// configuration and returns `(observables, wall_ns, wire_bytes)`.
fn run_mode(
    history_len: usize,
    mode: ReplicationMode,
    memoize: bool,
    seed: u64,
) -> (RunObservables, u128, u64) {
    let start = Instant::now();
    let mut sys = QuorumSystem::new(
        TaxiQueueType,
        3,
        taxi_assignment(3),
        ClientConfig::default(),
        NetworkConfig::new(1, 5, 0.0),
        seed,
    )
    .with_replication(mode)
    .with_memoized_views(memoize)
    .with_wire_accounting()
    .with_gossip(GOSSIP_INTERVAL);
    // Distinct payloads (realistic ids), so view values grow with the
    // history and baseline full replays pay their true cost.
    for i in 0..history_len {
        sys.submit(if i % 5 == 4 {
            QueueInv::Deq
        } else {
            QueueInv::Enq(i as i64)
        });
    }
    let done = sys.run_until_outcomes(history_len, 200_000_000);
    assert!(done, "workload of {history_len} ops did not complete");
    let elapsed = start.elapsed().as_nanos();
    let obs = RunObservables {
        outcomes: sys.outcomes().to_vec(),
        history: sys.merged_history().into_ops(),
        messages: sys.world().messages_sent(),
    };
    let bytes = sys.world().bytes_sent();
    (obs, elapsed, bytes)
}

/// Measures one history length with both configurations.
pub fn measure(history_len: usize, seed: u64) -> ThroughputRow {
    let (base_obs, baseline_ns, baseline_bytes) =
        run_mode(history_len, ReplicationMode::FullLog, false, seed);
    let (opt_obs, optimized_ns, optimized_bytes) =
        run_mode(history_len, ReplicationMode::Delta, true, seed);
    ThroughputRow {
        history_len,
        baseline_ns,
        optimized_ns,
        speedup: baseline_ns as f64 / optimized_ns.max(1) as f64,
        baseline_bytes,
        optimized_bytes,
        bytes_ratio: baseline_bytes as f64 / optimized_bytes.max(1) as f64,
        messages: opt_obs.messages,
        equivalent: base_obs == opt_obs,
    }
}

/// Measures every history length and renders the comparison table. The
/// last length is the gate row.
pub fn run(history_lens: &[usize], seed: u64) -> (Table, Vec<ThroughputRow>) {
    let rows: Vec<ThroughputRow> = history_lens.iter().map(|&len| measure(len, seed)).collect();
    let mut t = Table::new([
        "history len",
        "full-log (ms)",
        "delta+memo (ms)",
        "speedup",
        "full-log bytes",
        "delta bytes",
        "bytes ratio",
        "verdict",
    ]);
    for r in &rows {
        t.row([
            r.history_len.to_string(),
            format!("{:.1}", r.baseline_ns as f64 / 1e6),
            format!("{:.1}", r.optimized_ns as f64 / 1e6),
            format!("{:.2}x", r.speedup),
            r.baseline_bytes.to_string(),
            r.optimized_bytes.to_string(),
            format!("{:.1}x", r.bytes_ratio),
            if r.equivalent {
                "EQUIVALENT".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    (t, rows)
}

/// Renders the rows as the `BENCH_runtime_throughput.json` payload; the
/// last row carries the gate.
pub fn to_json(rows: &[ThroughputRow]) -> String {
    let gate = rows.last().expect("at least one history length");
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"history_len\":{},\"baseline_ns\":{},\"optimized_ns\":{},\
                 \"speedup\":{:.3},\"baseline_bytes\":{},\"optimized_bytes\":{},\
                 \"bytes_ratio\":{:.3},\"messages\":{},\"equivalent\":{}}}",
                r.history_len,
                r.baseline_ns,
                r.optimized_ns,
                r.speedup,
                r.baseline_bytes,
                r.optimized_bytes,
                r.bytes_ratio,
                r.messages,
                r.equivalent
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"runtime_throughput\",\"workload\":\"taxi_queue_delta_vs_full\",\
         \"gossip_interval\":{GOSSIP_INTERVAL},\
         \"rows\":[{}],\
         \"gate_history_len\":{},\"gate_speedup\":{:.3},\"gate_bytes_ratio\":{:.3},\
         \"target_speedup\":{TARGET_SPEEDUP:.1},\"target_bytes_ratio\":{TARGET_BYTES_RATIO:.1},\
         \"within_target\":{}}}\n",
        row_json.join(","),
        gate.history_len,
        gate.speedup,
        gate.bytes_ratio,
        gate.speedup >= TARGET_SPEEDUP
            && gate.bytes_ratio >= TARGET_BYTES_RATIO
            && rows.iter().all(|r| r.equivalent)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_are_equivalent_and_delta_is_lighter_at_small_lengths() {
        let row = measure(60, 11);
        assert!(row.equivalent, "modes diverged at history 60");
        assert!(
            row.optimized_bytes < row.baseline_bytes,
            "delta shipped {} bytes vs full-log {}",
            row.optimized_bytes,
            row.baseline_bytes
        );
    }

    #[test]
    fn json_payload_carries_the_gate() {
        let (_, rows) = run(&[16, 40], 5);
        let json = to_json(&rows);
        assert!(json.contains("\"bench\":\"runtime_throughput\""));
        assert!(json.contains("\"gate_history_len\":40"));
        assert!(json.contains("\"within_target\":"));
    }
}
