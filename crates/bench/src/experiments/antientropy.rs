//! Merkle anti-entropy repair efficiency: localized leaf shipping vs
//! XOR-delta frontiers vs whole-log pushes, plus checkpointed view
//! replay, under a splice-heavy schedule.
//!
//! The workload has two phases. Phase 1 (gossip off) manufactures the
//! divergence the frontier scheme degrades on: two clients sit on
//! opposite sides of a rotating partition, so each window lands the
//! second client's writes on a *different* lone replica. By the end,
//! every replica holds an interleaved subset of that client's site —
//! per-site holes, not a clean suffix, which is exactly the shape where
//! `delta_above` must fall back to full-site resends. Phase 2 heals the
//! network, turns on anti-entropy with no client load, and counts every
//! byte until the replica logs converge: that is the repair bill, paid
//! once per replication mode on the identical phase-1 state.
//!
//! Because phase 1 is gossip-free, the client protocol sends the same
//! messages at the same times in all modes: outcomes, merged history,
//! and (offline) degradation-monitor transitions must be bit-identical
//! — the full-log and delta runs are retained as differential oracles
//! and `within_target` requires agreement on every row.
//!
//! The same workload also measures the view-cache checkpoint chain: the
//! rotating windows splice entries below each client's cached view
//! prefix, so an uncheckpointed cache replays from zero on every miss
//! while the checkpoint chain resumes from the deepest surviving
//! snapshot. Both runs are observably identical (checkpoints never
//! change results); only `entries_replayed` moves.
//!
//! The deepest history is the CI gate: Merkle repair must ship at most
//! 1/[`TARGET_BYTES_RATIO`] of the delta repair bytes, and checkpointed
//! replay must fold at most 1/[`TARGET_REPLAY_RATIO`] of the
//! uncheckpointed entries.

use relax_queues::QueueOp;
use relax_quorum::relation::QueueKind;
use relax_quorum::runtime::{queue_lattice_monitor, Outcome, QueueInv, TaxiQueueType};
use relax_quorum::{ClientConfig, QuorumSystem, ReplicationMode, VotingAssignment};
use relax_sim::{Fault, FaultSchedule, NetworkConfig, NodeId, Partition, SimTime};
use relax_trace::monitor::LevelTransition;

use crate::table::Table;

/// The gate: delta-to-Merkle repair-byte ratio required at the deepest
/// history length.
pub const TARGET_BYTES_RATIO: f64 = 5.0;

/// The gate: uncheckpointed-to-checkpointed replay-depth ratio required
/// at the deepest history length.
pub const TARGET_REPLAY_RATIO: f64 = 3.0;

/// Anti-entropy interval for the phase-2 repair race (identical across
/// modes; only payloads differ).
pub const GOSSIP_INTERVAL: u64 = 20;

/// Partition windows in phase 1; window `w` pairs the second client
/// with replica `w % 3`. Every rotation splices the other side's
/// interleaved entries into each client's next view, so more windows
/// mean more checkpoint-resumable cache misses.
const WINDOWS: usize = 12;

/// Replicas (clients are nodes 3 and 4).
const N: usize = 3;

/// Majority-Deq taxi-queue assignment (the runtime's canonical shape).
fn taxi_assignment(n: usize) -> VotingAssignment<QueueKind> {
    let maj = n / 2 + 1;
    VotingAssignment::new(n)
        .with_initial(QueueKind::Deq, maj)
        .with_final(QueueKind::Deq, maj)
        .with_initial(QueueKind::Enq, 1)
        .with_final(QueueKind::Enq, n - maj + 1)
}

/// Everything one run observes that must not depend on the mode.
#[derive(Debug, Clone, PartialEq)]
struct RunObservables {
    outcomes_a: Vec<Outcome<QueueOp>>,
    outcomes_b: Vec<Outcome<QueueOp>>,
    history: Vec<QueueOp>,
    transitions: Vec<LevelTransition>,
}

/// What one configured run measured.
#[derive(Debug, Clone)]
struct RunMeasurement {
    obs: RunObservables,
    repair_bytes: u64,
    converged: bool,
    merkle: (u64, u64, u64),
    replayed: u64,
    checkpoint_hits: u64,
}

/// One measured history length.
#[derive(Debug, Clone)]
pub struct AntiEntropyRow {
    /// Total operations completed across both clients in phase 1.
    pub history_len: usize,
    /// Phase-2 repair bytes under whole-log gossip.
    pub full_repair_bytes: u64,
    /// Phase-2 repair bytes under XOR-delta frontiers.
    pub delta_repair_bytes: u64,
    /// Phase-2 repair bytes under Merkle localization.
    pub merkle_repair_bytes: u64,
    /// `delta_repair_bytes / merkle_repair_bytes`.
    pub bytes_ratio: f64,
    /// Localization rounds answered during the Merkle repair.
    pub merkle_rounds: u64,
    /// Tree-node summaries shipped during the Merkle repair.
    pub merkle_nodes: u64,
    /// Divergent leaf payloads served from the Arc cache.
    pub merkle_leaf_reuses: u64,
    /// View-cache entries folded with the checkpoint chain disabled.
    pub plain_replayed: u64,
    /// View-cache entries folded with the checkpoint chain on.
    pub checkpointed_replayed: u64,
    /// `plain_replayed / checkpointed_replayed`.
    pub replay_ratio: f64,
    /// Misses that resumed from a surviving checkpoint.
    pub checkpoint_hits: u64,
    /// Did every run converge within the phase-2 budget?
    pub converged: bool,
    /// Did all four runs observe identical outcomes, merged history,
    /// and monitor transitions?
    pub equivalent: bool,
}

/// Runs the two-phase workload in one configuration.
fn run_mode(
    history_len: usize,
    mode: ReplicationMode,
    checkpoints: bool,
    seed: u64,
) -> RunMeasurement {
    let mut sys = QuorumSystem::with_clients(
        TaxiQueueType,
        N,
        2,
        taxi_assignment(N),
        ClientConfig::default(),
        NetworkConfig::new(1, 5, 0.0),
        seed,
    )
    .with_replication(mode)
    .with_wire_accounting()
    .with_view_checkpoints(checkpoints);

    // Phase 1: rotating partition, gossip off. Client a (node 3) keeps
    // a majority and mixes Deqs in; client b (node 4) is paired with a
    // single rotating replica and appends — its entries interleave
    // into every view below the cached point on the next rotation.
    let per = (history_len / (2 * WINDOWS)).max(1);
    let mut submitted = 0usize;
    for w in 0..WINDOWS {
        let lone = NodeId(w % N);
        let now = sys.world().now().0;
        let with_a: Vec<NodeId> = (0..N)
            .map(NodeId)
            .filter(|&r| r != lone)
            .chain([NodeId(N)])
            .collect();
        sys.world_mut().set_schedule(FaultSchedule::new().at(
            SimTime(now + 1),
            Fault::Partition(Partition::groups(vec![with_a, vec![NodeId(N + 1), lone]])),
        ));
        for i in 0..per {
            let k = (w * per + i) as i64;
            sys.submit_to(
                0,
                if i % 8 == 7 {
                    QueueInv::Deq
                } else {
                    QueueInv::Enq(k)
                },
            );
            sys.submit_to(1, QueueInv::Enq(1_000 + k));
        }
        submitted += per;
        let mut t = sys.world().now().0;
        let deadline = t + 4_000_000;
        while t < deadline
            && (sys.outcomes_of(0).len() < submitted || sys.outcomes_of(1).len() < submitted)
        {
            t += 500;
            sys.run_until(SimTime(t));
        }
        assert!(
            sys.outcomes_of(0).len() >= submitted && sys.outcomes_of(1).len() >= submitted,
            "phase-1 window {w} stalled at {}/{} outcomes",
            sys.outcomes_of(0).len(),
            sys.outcomes_of(1).len()
        );
    }

    // Phase 2: heal, enable anti-entropy, no client load — every byte
    // from here on is repair traffic.
    let repair_start = sys.world().bytes_sent();
    let now = sys.world().now().0;
    sys.world_mut()
        .set_schedule(FaultSchedule::new().at(SimTime(now + 1), Fault::Heal));
    sys.enable_gossip(GOSSIP_INTERVAL);
    let converged = |sys: &QuorumSystem<TaxiQueueType>| {
        (1..N).all(|i| sys.replica_log(i) == sys.replica_log(0))
    };
    let mut t = now;
    let deadline = now + 400_000;
    while t < deadline && !converged(&sys) {
        t += 200;
        sys.run_until(SimTime(t));
    }
    let converged = converged(&sys);

    // Monitor transitions computed offline over the completed ops: the
    // MPQ frontier can branch per Deq, so attaching the monitor live
    // would dominate the measured run.
    let mut monitor = queue_lattice_monitor();
    for op in sys.completed_ops() {
        let _ = monitor.observe(&op);
    }
    RunMeasurement {
        obs: RunObservables {
            outcomes_a: sys.outcomes_of(0).to_vec(),
            outcomes_b: sys.outcomes_of(1).to_vec(),
            history: sys.merged_history().into_ops(),
            transitions: monitor.transitions().to_vec(),
        },
        repair_bytes: sys.world().bytes_sent() - repair_start,
        converged,
        merkle: sys.merkle_sync_counts(),
        replayed: sys.viewcache_replayed_entries(),
        checkpoint_hits: sys.viewcache_checkpoint_hits(),
    }
}

/// Measures one history length across all four configurations.
pub fn measure(history_len: usize, seed: u64) -> AntiEntropyRow {
    let full = run_mode(history_len, ReplicationMode::FullLog, true, seed);
    let delta = run_mode(history_len, ReplicationMode::Delta, true, seed);
    let merkle = run_mode(history_len, ReplicationMode::Merkle, true, seed);
    let plain = run_mode(history_len, ReplicationMode::Merkle, false, seed);
    let equivalent = full.obs == delta.obs && full.obs == merkle.obs && full.obs == plain.obs;
    let (rounds, nodes, reuses) = merkle.merkle;
    AntiEntropyRow {
        history_len,
        full_repair_bytes: full.repair_bytes,
        delta_repair_bytes: delta.repair_bytes,
        merkle_repair_bytes: merkle.repair_bytes,
        bytes_ratio: delta.repair_bytes as f64 / merkle.repair_bytes.max(1) as f64,
        merkle_rounds: rounds,
        merkle_nodes: nodes,
        merkle_leaf_reuses: reuses,
        plain_replayed: plain.replayed,
        checkpointed_replayed: merkle.replayed,
        replay_ratio: plain.replayed as f64 / merkle.replayed.max(1) as f64,
        checkpoint_hits: merkle.checkpoint_hits,
        converged: full.converged && delta.converged && merkle.converged && plain.converged,
        equivalent,
    }
}

/// Measures every history length and renders the comparison table. The
/// last length is the gate row.
pub fn run(history_lens: &[usize], seed: u64) -> (Table, Vec<AntiEntropyRow>) {
    let rows: Vec<AntiEntropyRow> = history_lens.iter().map(|&len| measure(len, seed)).collect();
    let mut t = Table::new([
        "history len",
        "full repair B",
        "delta repair B",
        "merkle repair B",
        "bytes ratio",
        "replay plain",
        "replay ckpt",
        "replay ratio",
        "verdict",
    ]);
    for r in &rows {
        t.row([
            r.history_len.to_string(),
            r.full_repair_bytes.to_string(),
            r.delta_repair_bytes.to_string(),
            r.merkle_repair_bytes.to_string(),
            format!("{:.1}x", r.bytes_ratio),
            r.plain_replayed.to_string(),
            r.checkpointed_replayed.to_string(),
            format!("{:.1}x", r.replay_ratio),
            if r.equivalent && r.converged {
                "EQUIVALENT".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    (t, rows)
}

/// Renders the rows as the `BENCH_merkle_antientropy.json` payload; the
/// last row carries the gates.
pub fn to_json(rows: &[AntiEntropyRow]) -> String {
    let gate = rows.last().expect("at least one history length");
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"history_len\":{},\"full_repair_bytes\":{},\"delta_repair_bytes\":{},\
                 \"merkle_repair_bytes\":{},\"bytes_ratio\":{:.3},\
                 \"merkle_rounds\":{},\"merkle_nodes\":{},\"merkle_leaf_reuses\":{},\
                 \"plain_replayed\":{},\"checkpointed_replayed\":{},\"replay_ratio\":{:.3},\
                 \"checkpoint_hits\":{},\"converged\":{},\"equivalent\":{}}}",
                r.history_len,
                r.full_repair_bytes,
                r.delta_repair_bytes,
                r.merkle_repair_bytes,
                r.bytes_ratio,
                r.merkle_rounds,
                r.merkle_nodes,
                r.merkle_leaf_reuses,
                r.plain_replayed,
                r.checkpointed_replayed,
                r.replay_ratio,
                r.checkpoint_hits,
                r.converged,
                r.equivalent
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"merkle_antientropy\",\"workload\":\"rotating_partition_splice\",\
         \"gossip_interval\":{GOSSIP_INTERVAL},\"windows\":{WINDOWS},\
         \"rows\":[{}],\
         \"gate_history_len\":{},\"gate_bytes_ratio\":{:.3},\"gate_replay_ratio\":{:.3},\
         \"target_bytes_ratio\":{TARGET_BYTES_RATIO:.1},\
         \"target_replay_ratio\":{TARGET_REPLAY_RATIO:.1},\
         \"within_target\":{}}}\n",
        row_json.join(","),
        gate.history_len,
        gate.bytes_ratio,
        gate.replay_ratio,
        gate.bytes_ratio >= TARGET_BYTES_RATIO
            && gate.replay_ratio >= TARGET_REPLAY_RATIO
            && rows.iter().all(|r| r.equivalent && r.converged)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_are_equivalent_and_merkle_repair_is_lighter_at_small_lengths() {
        let row = measure(96, 29);
        assert!(row.converged, "phase-2 repair did not converge");
        assert!(row.equivalent, "modes diverged at history 96");
        assert!(
            row.merkle_repair_bytes < row.delta_repair_bytes,
            "merkle repair shipped {} bytes vs delta {}",
            row.merkle_repair_bytes,
            row.delta_repair_bytes
        );
        assert!(
            row.checkpointed_replayed < row.plain_replayed,
            "checkpoints did not shorten replays: {} vs {}",
            row.checkpointed_replayed,
            row.plain_replayed
        );
    }

    #[test]
    fn json_payload_carries_the_gates() {
        let (_, rows) = run(&[48], 7);
        let json = to_json(&rows);
        assert!(json.contains("\"bench\":\"merkle_antientropy\""));
        assert!(json.contains("\"gate_bytes_ratio\":"));
        assert!(json.contains("\"gate_replay_ratio\":"));
        assert!(json.contains("\"within_target\":"));
    }
}
