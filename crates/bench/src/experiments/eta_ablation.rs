//! Ablation: the choice of evaluation function `η` vs `η′` (§3.3).
//!
//! Declaratively, the two lattices share a top (the priority queue) and
//! diverge at relaxed points — `η′`'s languages are strictly smaller at
//! `{Q2}` (no out-of-order service) at the price of starvation.
//! Operationally, the same replicated system under the same partition
//! schedule trades *inversions* (η) against *ignored requests* (η′).

use relax_automata::language_sizes;
use relax_core::lattices::eta_prime::TaxiLatticeEtaPrime;
use relax_core::lattices::taxi::{TaxiLattice, TaxiPoint};
use relax_queues::{queue_alphabet, Item, QueueOp};
use relax_quorum::relation::QueueKind;
use relax_quorum::runtime::{Outcome, QueueInv, ReplicatedType, TaxiQueuePrimeType, TaxiQueueType};
use relax_quorum::{ClientConfig, QuorumSystem, VotingAssignment};
use relax_sim::{FaultSchedule, NetworkConfig, NodeId, SimTime};

use crate::table::Table;

/// Declarative comparison: bounded language sizes per lattice point.
pub fn language_size_table(max_len: usize) -> Table {
    let alphabet = queue_alphabet(&[1, 2]);
    let eta = TaxiLattice::new();
    let eta_prime = TaxiLatticeEtaPrime::new();
    let mut t = Table::new(["point", "|L| with η", "|L| with η′", "relation"]);
    for point in TaxiPoint::all() {
        // Counted on the subset graph — no history materialization.
        let l_eta: usize = language_sizes(&eta.qca(point), &alphabet, max_len)
            .iter()
            .sum();
        let l_prime: usize = language_sizes(&eta_prime.qca(point), &alphabet, max_len)
            .iter()
            .sum();
        let relation = match l_eta.cmp(&l_prime) {
            std::cmp::Ordering::Equal => "equal",
            std::cmp::Ordering::Greater => "η′ stricter",
            std::cmp::Ordering::Less => "η stricter",
        };
        t.row([
            format!("Q1={} Q2={}", point.q1 as u8, point.q2 as u8),
            l_eta.to_string(),
            l_prime.to_string(),
            relation.to_string(),
        ]);
    }
    t
}

/// Operational metrics from one replicated run.
#[derive(Debug, Clone, PartialEq)]
pub struct EtaRunMetrics {
    /// Distinct requests served.
    pub served: usize,
    /// Requests enqueued but never served (starved).
    pub ignored: usize,
    /// Service-order inversions among first services (pairs served in
    /// ascending-priority order).
    pub inversions: usize,
    /// Deq invocations that found an apparently empty queue.
    pub refused: usize,
}

/// Runs the same workload under the same partition for a replicated
/// type.
///
/// The scenario engineers divergent views: while the dispatcher is
/// partitioned with a single site, two *high-priority* requests land on
/// that site only. After the partition heals, dequeues read two of three
/// sites — a view that misses the high-priority requests lets a
/// lower-priority one be served first, after which `η′` discards the
/// skipped requests forever while `η` eventually serves them.
pub fn run_replicated<T>(ttype: T, seed: u64) -> EtaRunMetrics
where
    T: ReplicatedType<Inv = QueueInv, Op = QueueOp>,
{
    // Enq carries no initial quorum (its response is state-independent),
    // so low-priority enqueues do NOT ship merged views around — the
    // divergence persists until a dequeue's view spans it.
    let assignment = VotingAssignment::new(3)
        .with_initial(QueueKind::Enq, 0)
        .with_final(QueueKind::Enq, 1)
        .with_initial(QueueKind::Deq, 2)
        .with_final(QueueKind::Deq, 1);
    let mut sys = QuorumSystem::new(
        ttype,
        3,
        assignment,
        ClientConfig { timeout: 120 },
        NetworkConfig::new(1, 10, 0.0),
        seed,
    );
    // The client (node 3) is cut off with site 0 until t = 300.
    sys.world_mut().set_schedule(
        FaultSchedule::new()
            .at(
                SimTime(0),
                relax_sim::Fault::Partition(relax_sim::Partition::groups(vec![
                    vec![NodeId(3), NodeId(0)],
                    vec![NodeId(1), NodeId(2)],
                ])),
            )
            .at(SimTime(300), relax_sim::Fault::Heal),
    );

    let high: [Item; 2] = [9, 8];
    let low: [Item; 3] = [5, 2, 1];
    for p in high {
        sys.submit(QueueInv::Enq(p)); // recorded at site 0 only
    }
    sys.run_until(SimTime(350));
    for p in low {
        sys.submit(QueueInv::Enq(p)); // recorded everywhere
    }
    for _ in 0..8 {
        sys.submit(QueueInv::Deq);
    }
    sys.run_to_quiescence(1_000_000);
    let priorities: Vec<Item> = high.iter().chain(low.iter()).copied().collect();

    let mut served: Vec<Item> = Vec::new();
    let mut refused = 0usize;
    for o in sys.outcomes() {
        match o {
            Outcome::Completed {
                op: QueueOp::Deq(e),
                ..
            } if !served.contains(e) => {
                served.push(*e);
            }
            Outcome::Refused { .. } => refused += 1,
            _ => {}
        }
    }
    let inversions = served
        .iter()
        .enumerate()
        .flat_map(|(i, a)| served[i + 1..].iter().map(move |b| (a, b)))
        .filter(|(a, b)| a < b)
        .count();
    EtaRunMetrics {
        served: served.len(),
        ignored: priorities.len() - served.len(),
        inversions,
        refused,
    }
}

/// Aggregates the operational comparison over seeds.
pub fn operational_table(seeds: u64) -> Table {
    let mut t = Table::new([
        "evaluation",
        "served (mean)",
        "ignored (mean)",
        "inversions (mean)",
    ]);
    let mut add_row = |label: &str, runs: Vec<EtaRunMetrics>| {
        let n = runs.len() as f64;
        t.row([
            label.to_string(),
            format!(
                "{:.2}",
                runs.iter().map(|r| r.served).sum::<usize>() as f64 / n
            ),
            format!(
                "{:.2}",
                runs.iter().map(|r| r.ignored).sum::<usize>() as f64 / n
            ),
            format!(
                "{:.2}",
                runs.iter().map(|r| r.inversions).sum::<usize>() as f64 / n
            ),
        ]);
    };
    add_row(
        "η  (out-of-order tolerated)",
        (0..seeds)
            .map(|s| run_replicated(TaxiQueueType, s))
            .collect(),
    );
    add_row(
        "η′ (skipped requests ignored)",
        (0..seeds)
            .map(|s| run_replicated(TaxiQueuePrimeType, s))
            .collect(),
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn language_sizes_diverge_at_relaxed_points() {
        let t = language_size_table(4);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        // Top row equal; Q2-only row strictly smaller under η′.
        assert!(lines[2].contains("equal"), "{}", lines[2]);
        assert!(lines[4].contains("η′ stricter"), "{}", lines[4]);
    }

    #[test]
    fn eta_prime_trades_starvation_for_order() {
        let eta: Vec<EtaRunMetrics> = (0..12).map(|s| run_replicated(TaxiQueueType, s)).collect();
        let prime: Vec<EtaRunMetrics> = (0..12)
            .map(|s| run_replicated(TaxiQueuePrimeType, s))
            .collect();
        let eta_ignored: usize = eta.iter().map(|r| r.ignored).sum();
        let prime_ignored: usize = prime.iter().map(|r| r.ignored).sum();
        // η′ starves at least as much as η, and strictly more in
        // aggregate under this partition schedule.
        assert!(
            prime_ignored > eta_ignored,
            "η′ ignored {prime_ignored} vs η {eta_ignored}"
        );
    }
}
