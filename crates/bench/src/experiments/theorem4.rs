//! Theorem 4 (and the other lattice points), bounded verification.

use relax_core::theorem4::{separating_histories, verify_taxi_lattice, TaxiVerification};
use relax_trace::ProfileReport;

use crate::experiments::profile::profiled_shared;
use crate::table::Table;

/// Runs the verification and renders the per-point table.
pub fn run(items: &[i64], max_len: usize) -> (Table, TaxiVerification) {
    let v = verify_taxi_lattice(items, max_len);
    (point_table(&v), v)
}

/// [`run`] under the flight recorder: the same table plus the
/// reconstructed span tree of the shared walk — the per-point language
/// sizes and peak frontiers in the table come from the verification,
/// their timing breakdown from the profile, one source each.
pub fn run_profiled(items: &[i64], max_len: usize) -> (Table, TaxiVerification, ProfileReport) {
    let probed = profiled_shared(items, max_len);
    (point_table(&probed.result), probed.result, probed.report)
}

fn point_table(v: &TaxiVerification) -> Table {
    let mut t = Table::new([
        "point",
        "claimed behavior",
        "|L| (≤ bound)",
        "peak nodes",
        "verdict",
    ]);
    for p in &v.points {
        t.row([
            format!("Q1={} Q2={}", p.point.q1 as u8, p.point.q2 as u8),
            p.behavior.to_string(),
            p.language_size.to_string(),
            p.peak_frontier.to_string(),
            if p.holds() {
                "EQUAL".to_string()
            } else {
                format!("DIFFER: {:?}", p.difference)
            },
        ]);
    }
    t
}

/// Renders the strictness witnesses (histories separating each relaxed
/// point from the preferred behavior).
pub fn witnesses_table() -> Table {
    let mut t = Table::new(["point", "separating history"]);
    for (point, h) in separating_histories() {
        t.row([
            format!("Q1={} Q2={}", point.q1 as u8, point.q2 as u8),
            h.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verification_passes_and_renders() {
        let (t, v) = run(&[1, 2], 5);
        assert!(v.holds());
        assert_eq!(t.len(), 4);
        assert!(t.to_string().contains("EQUAL"));
    }

    #[test]
    fn witnesses_render() {
        let t = witnesses_table();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn profiled_run_matches_and_carries_spans() {
        let (t, v, report) = run_profiled(&[1, 2], 5);
        assert!(v.holds());
        assert_eq!(t.len(), 4);
        assert_eq!(report.roots[0].name, "theorem4");
        assert_eq!(report.self_sum_ns(), report.total_ns());
    }
}
