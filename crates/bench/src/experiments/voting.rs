//! Ablation: uniform vs weighted voting (Gifford \[10\]) under
//! heterogeneous site reliability.
//!
//! The intersection constraints (`Q2`: majority Deq quorums) don't care
//! *whose* votes make the majority. When one site is far more reliable
//! than the rest, concentrating votes on it buys availability for free —
//! the quorum assignment is a tuning knob the relaxation lattice leaves
//! open.

use relax_quorum::relation::QueueKind;
use relax_quorum::voting::WeightedVoting;

use crate::table::Table;

/// One row: a vote vector with its Deq-majority availability.
#[derive(Debug, Clone)]
pub struct VotingRow {
    /// Human-readable vote layout.
    pub votes: String,
    /// The majority threshold used.
    pub threshold: u32,
    /// Smallest quorum in sites (latency proxy).
    pub min_sites: usize,
    /// Availability of a majority quorum.
    pub availability: f64,
}

/// Sweeps vote layouts over fixed per-site reliabilities.
pub fn sweep(p_up: &[f64], layouts: &[Vec<u32>]) -> Vec<VotingRow> {
    layouts
        .iter()
        .map(|votes| {
            let w = WeightedVoting::<QueueKind>::new(votes.clone());
            let majority = w.total_votes() / 2 + 1;
            VotingRow {
                votes: format!("{votes:?}"),
                threshold: majority,
                min_sites: w.min_quorum_sites(majority).unwrap_or(usize::MAX),
                availability: w.availability(majority, p_up),
            }
        })
        .collect()
}

/// Renders the sweep.
pub fn render(p_up: &[f64], rows: &[VotingRow]) -> Table {
    let mut t = Table::new([
        "votes per site",
        "majority",
        "min quorum (sites)",
        "availability",
    ]);
    let _ = p_up;
    for r in rows {
        t.row([
            r.votes.clone(),
            r.threshold.to_string(),
            r.min_sites.to_string(),
            format!("{:.4}", r.availability),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concentrating_votes_on_reliable_site_wins() {
        let p = [0.99, 0.7, 0.7, 0.7, 0.7];
        let rows = sweep(
            &p,
            &[
                vec![1, 1, 1, 1, 1],
                vec![3, 1, 1, 1, 1],
                vec![7, 1, 1, 1, 1],
            ],
        );
        // Availability improves as the reliable site gains votes.
        assert!(rows[1].availability > rows[0].availability);
        assert!(rows[2].availability > rows[1].availability);
        // With 7 of 11 votes, the reliable site is a majority by itself.
        assert_eq!(rows[2].min_sites, 1);
        assert!((rows[2].availability - 0.99) < 1e-9);
    }

    #[test]
    fn render_rows() {
        let p = [0.9, 0.9, 0.9];
        let rows = sweep(&p, &[vec![1, 1, 1]]);
        assert_eq!(render(&p, &rows).len(), 1);
    }
}
