//! Deterministic trial fan-out over scoped threads.
//!
//! Experiment sweeps repeat independent trials with per-trial seeds;
//! [`fan_trials`] runs them across `std::thread::scope` workers in
//! contiguous chunks and stitches the results back **in trial order**, so
//! the output `Vec` — and anything folded from it in order, including
//! `Registry` histogram sample order — is identical to a sequential run.
//! (The same chunked-scope idiom as `relax-automata`'s parallel subset
//! expansion.)

use std::thread;

/// Worker count: available parallelism, capped (the trials are short;
/// more threads than ~8 just adds scheduling noise), floored at 1. The
/// `RELAX_BENCH_THREADS` environment variable overrides the probe —
/// `RELAX_BENCH_THREADS=1` forces sequential runs (CI determinism
/// checks), larger values pin a fixed width for comparable timings
/// across machines. Unparsable or zero values fall back to the probe.
pub fn auto_threads() -> usize {
    if let Some(n) = std::env::var("RELAX_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// Runs `run(0..trials)` across scoped threads and returns the results
/// in trial order. `run` must derive everything from the trial index
/// (per-trial seeds) — it gets no shared mutable state, which is what
/// makes the parallel result bit-identical to the sequential one.
pub fn fan_trials<R, F>(trials: u32, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(u32) -> R + Sync,
{
    let threads = auto_threads().min(trials.max(1) as usize);
    if threads <= 1 || trials <= 1 {
        return (0..trials).map(run).collect();
    }
    let chunk = (trials as usize).div_ceil(threads);
    let mut out = Vec::with_capacity(trials as usize);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for start in (0..trials).step_by(chunk) {
            let end = (start + chunk as u32).min(trials);
            let run = &run;
            handles.push(scope.spawn(move || (start..end).map(run).collect::<Vec<R>>()));
        }
        for h in handles {
            out.extend(h.join().expect("trial worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_trial_order() {
        let got = fan_trials(100, |t| t * 3);
        let want: Vec<u32> = (0..100).map(|t| t * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn zero_and_one_trials() {
        assert_eq!(fan_trials(0, |t| t), Vec::<u32>::new());
        assert_eq!(fan_trials(1, |t| t + 7), vec![7]);
    }

    #[test]
    fn matches_sequential_for_stateful_per_trial_work() {
        // Each trial runs its own rng from its own seed; parallel and
        // sequential must agree exactly.
        let work = |t: u32| {
            let mut x = u64::from(t).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for _ in 0..50 {
                x ^= x >> 13;
                x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
            }
            x
        };
        let seq: Vec<u64> = (0..37).map(work).collect();
        assert_eq!(fan_trials(37, work), seq);
    }

    #[test]
    fn parallel_registry_equals_sequential() {
        // The guarantee the experiment sweeps lean on: folding per-trial
        // samples into a Registry in trial order yields a Registry equal
        // to the sequential run's — same histograms, same sample order,
        // same quantiles.
        use relax_trace::Registry;
        let work = |t: u32| -> Vec<u64> { (0..8).map(|i| (u64::from(t) * 31 + i) % 97).collect() };
        let fold = |per_trial: Vec<Vec<u64>>| -> Registry {
            let mut reg = Registry::new();
            for samples in per_trial {
                let hist = reg.histogram("trial_latency");
                for s in samples {
                    hist.record(s);
                }
            }
            reg
        };
        let parallel = fold(fan_trials(23, work));
        let sequential = fold((0..23).map(work).collect());
        assert_eq!(parallel, sequential);
    }
}
