//! Figure 5-1's "Availability" cost, made measurable (§3.3).
//!
//! Two views of the same trade-off:
//!
//! * **analytic** — `operation_availability` per quorum assignment as the
//!   site-up probability varies;
//! * **operational** — the replicated taxi queue on the simulator with
//!   random site crashes, counting timeouts.
//!
//! The assignments swept realize the `Q1` trade-off ("if one operation's
//! quorums are made smaller … the other's must be made larger") and the
//! `Q2` majority consequence.

use relax_automata::SplitMix64;
use relax_core::cost::operation_availability;
use relax_quorum::relation::QueueKind;
use relax_quorum::runtime::{QueueInv, TaxiQueueType};
use relax_quorum::{queue_relation, ClientConfig, QuorumSystem, VotingAssignment};
use relax_sim::{NetworkConfig, NodeId};
use relax_trace::metrics::wire;
use relax_trace::Registry;

use crate::experiments::par::fan_trials;
use crate::table::Table;

/// A named quorum assignment for the sweep.
#[derive(Debug, Clone)]
pub struct NamedAssignment {
    /// Display label.
    pub label: String,
    /// The assignment.
    pub assignment: VotingAssignment<QueueKind>,
}

/// The `Q1` trade-off family over `n` sites: final Enq quorums of size
/// `f` paired with initial Deq quorums of size `n - f + 1`, with `Q2`
/// satisfied by majority Deq final quorums. Every member satisfies
/// `{Q1, Q2}`.
pub fn tradeoff_family(n: usize) -> Vec<NamedAssignment> {
    let rel = queue_relation(true, true);
    let mut out = Vec::new();
    for enq_final in 1..=n {
        let deq_initial = n - enq_final + 1;
        let deq_final = n - deq_initial + 1; // Q2: deq_init + deq_final > n
        let a = VotingAssignment::new(n)
            .with_initial(QueueKind::Enq, 1)
            .with_final(QueueKind::Enq, enq_final)
            .with_initial(QueueKind::Deq, deq_initial)
            .with_final(QueueKind::Deq, deq_final);
        debug_assert!(a.satisfies(&rel));
        out.push(NamedAssignment {
            label: format!("Enq fin={enq_final} / Deq init={deq_initial}"),
            assignment: a,
        });
    }
    out
}

/// One analytic sweep row.
#[derive(Debug, Clone)]
pub struct AvailabilityRow {
    /// Assignment label.
    pub label: String,
    /// Analytic Enq availability.
    pub enq_analytic: f64,
    /// Analytic Deq availability.
    pub deq_analytic: f64,
    /// Measured Enq availability (simulator).
    pub enq_measured: f64,
    /// Measured Deq availability (simulator).
    pub deq_measured: f64,
}

/// Runs the sweep at one site-up probability.
pub fn sweep(n: usize, p_up: f64, trials: u32, seed: u64) -> Vec<AvailabilityRow> {
    tradeoff_family(n)
        .into_iter()
        .map(|na| {
            let enq_analytic = operation_availability(
                n,
                na.assignment.initial_size(QueueKind::Enq),
                na.assignment.final_size(QueueKind::Enq),
                p_up,
            );
            let deq_analytic = operation_availability(
                n,
                na.assignment.initial_size(QueueKind::Deq),
                na.assignment.final_size(QueueKind::Deq),
                p_up,
            );
            let (enq_measured, deq_measured) = measure(n, &na.assignment, p_up, trials, seed);
            AvailabilityRow {
                label: na.label,
                enq_analytic,
                deq_analytic,
                enq_measured,
                deq_measured,
            }
        })
        .collect()
}

/// Operational measurement: crash each site independently with
/// probability `1 - p_up`, preload one request, then attempt one Enq and
/// one Deq; count completions.
fn measure(
    n: usize,
    assignment: &VotingAssignment<QueueKind>,
    p_up: f64,
    trials: u32,
    seed: u64,
) -> (f64, f64) {
    let reg = measure_registry(n, assignment, p_up, trials, seed);
    let rate = |name: &str| reg.get_counter(name).and_then(|c| c.rate()).unwrap_or(0.0);
    (rate("enq"), rate("deq"))
}

/// Like `measure`, but returns the full metrics registry: availability
/// counters (`enq`, `deq`), completion-latency histograms
/// (`enq_latency`, `deq_latency`), and summed wire gauges
/// (`wire_shipped_bytes`, `wire_messages_sent`).
///
/// Trials fan across scoped threads (everything a trial needs derives
/// from its index) and their registries merge back in trial order, so
/// the result is identical to [`measure_registry_sequential`].
pub fn measure_registry(
    n: usize,
    assignment: &VotingAssignment<QueueKind>,
    p_up: f64,
    trials: u32,
    seed: u64,
) -> Registry {
    let regs = fan_trials(trials, |trial| {
        trial_registry(n, assignment, p_up, trial, seed, 0)
    });
    let mut reg = Registry::new();
    for r in &regs {
        reg.merge_accumulating(r);
    }
    reg
}

/// The sequential reference for [`measure_registry`] (same trials, same
/// merge order, one thread) — pinned equal by test.
pub fn measure_registry_sequential(
    n: usize,
    assignment: &VotingAssignment<QueueKind>,
    p_up: f64,
    trials: u32,
    seed: u64,
) -> Registry {
    measure_registry_traced(n, assignment, p_up, trials, seed, 0)
}

/// Like [`measure_registry`], with structured tracing enabled on every
/// trial's world when `trace_capacity > 0` (used by the
/// `exp_trace_overhead` bench to price the instrumentation).
/// Deliberately sequential: the overhead bench compares per-trial wall
/// clock, which thread scheduling would distort.
pub fn measure_registry_traced(
    n: usize,
    assignment: &VotingAssignment<QueueKind>,
    p_up: f64,
    trials: u32,
    seed: u64,
    trace_capacity: usize,
) -> Registry {
    let mut reg = Registry::new();
    for trial in 0..trials {
        let r = trial_registry(n, assignment, p_up, trial, seed, trace_capacity);
        reg.merge_accumulating(&r);
    }
    reg
}

/// One availability trial, self-contained: crash draws come from a
/// per-trial rng (not a shared stream), so trials can run on any thread
/// in any order and still produce identical results.
fn trial_registry(
    n: usize,
    assignment: &VotingAssignment<QueueKind>,
    p_up: f64,
    trial: u32,
    seed: u64,
    trace_capacity: usize,
) -> Registry {
    let mut reg = Registry::new();
    let mut rng = SplitMix64::seed_from_u64(
        seed.rotate_left(17) ^ u64::from(trial).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let mut sys = QuorumSystem::new(
        TaxiQueueType,
        n,
        assignment.clone(),
        ClientConfig::default(),
        NetworkConfig::new(1, 10, 0.0),
        seed ^ (u64::from(trial) * 2_654_435_761),
    )
    .with_wire_accounting();
    if trace_capacity > 0 {
        sys = sys.with_trace(trace_capacity);
    }
    // Preload a request while everything is up, so Deq has something
    // to return.
    sys.submit(QueueInv::Enq(5));
    sys.run_to_first_outcome(100_000);

    // Crash sites per p_up.
    for site in 0..n {
        if rng.next_f64() > p_up {
            sys.world_mut().network_mut().crash(NodeId(site));
        }
    }
    sys.submit(QueueInv::Enq(7));
    sys.submit(QueueInv::Deq);
    sys.run_to_quiescence(300_000);
    let outcomes = sys.outcomes();
    // An operation is *available* when its quorum was assembled:
    // Completed, or Refused (a Deq that ran but saw no visible item).
    // Only a timeout counts against availability.
    if let Some(o) = outcomes.get(1) {
        o.record_to(&mut reg, "enq");
    }
    if let Some(o) = outcomes.get(2) {
        o.record_to(&mut reg, "deq");
    }
    reg.gauge(wire::BYTES_SHIPPED)
        .set(sys.world().bytes_sent() as i64);
    reg.gauge(wire::MESSAGES_SENT)
        .set(sys.world().messages_sent() as i64);
    reg
}

/// Renders a sweep.
pub fn render(rows: &[AvailabilityRow]) -> Table {
    let mut t = Table::new([
        "assignment",
        "Enq avail (analytic)",
        "Enq avail (sim)",
        "Deq avail (analytic)",
        "Deq avail (sim)",
    ]);
    for r in rows {
        t.row([
            r.label.clone(),
            format!("{:.3}", r.enq_analytic),
            format!("{:.3}", r.enq_measured),
            format!("{:.3}", r.deq_analytic),
            format!("{:.3}", r.deq_measured),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_satisfies_full_relation() {
        let rel = queue_relation(true, true);
        for na in tradeoff_family(5) {
            assert!(na.assignment.satisfies(&rel), "{}", na.label);
        }
    }

    #[test]
    fn tradeoff_shape_holds() {
        // As Enq final quorums shrink, Enq availability rises and Deq
        // availability falls (analytically).
        let rows = sweep(3, 0.8, 12, 42);
        assert!(rows.first().unwrap().enq_analytic >= rows.last().unwrap().enq_analytic);
        assert!(rows.first().unwrap().deq_analytic <= rows.last().unwrap().deq_analytic);
    }

    #[test]
    fn simulation_tracks_analytic_roughly() {
        let rows = sweep(3, 0.85, 60, 7);
        for r in &rows {
            assert!(
                (r.enq_measured - r.enq_analytic).abs() < 0.2,
                "{}: enq sim {} vs analytic {}",
                r.label,
                r.enq_measured,
                r.enq_analytic
            );
            assert!(
                (r.deq_measured - r.deq_analytic).abs() < 0.2,
                "{}: deq sim {} vs analytic {}",
                r.label,
                r.deq_measured,
                r.deq_analytic
            );
        }
    }

    #[test]
    fn parallel_trials_match_sequential_exactly() {
        let na = &tradeoff_family(3)[1];
        let par = measure_registry(3, &na.assignment, 0.8, 24, 123);
        let seq = measure_registry_sequential(3, &na.assignment, 0.8, 24, 123);
        assert_eq!(par, seq);
    }

    #[test]
    fn wire_gauges_accumulate_across_trials() {
        let na = &tradeoff_family(3)[0];
        let one = measure_registry(3, &na.assignment, 1.0, 1, 9);
        let four = measure_registry(3, &na.assignment, 1.0, 4, 9);
        let bytes = |r: &Registry| r.get_gauge(wire::BYTES_SHIPPED).map_or(0, |g| g.value());
        assert!(bytes(&one) > 0);
        assert!(bytes(&four) > bytes(&one));
    }

    #[test]
    fn render_has_row_per_assignment() {
        let rows = sweep(3, 0.9, 5, 1);
        assert_eq!(render(&rows).len(), 3);
    }
}
