//! Figure 5-1's "Concurrency" cost, made measurable (§4.2).
//!
//! The print spooler under the three strategies, sweeping the number of
//! concurrent printer controllers `d`. The shape the paper predicts:
//!
//! * blocking FIFO throughput stays flat (dequeuers serialize);
//! * optimistic throughput scales with `d`, out-of-order distance
//!   bounded by the concurrency (`Semiqueue_k` with `k = d`);
//! * pessimistic keeps FIFO order but pays in duplicate prints
//!   (`Stuttering_j` with `j = d`).

use relax_atomic::{DequeueStrategy, Spooler, SpoolerConfig};

use crate::table::Table;

/// One sweep row: a strategy at a concurrency level, averaged over
/// seeds.
#[derive(Debug, Clone)]
pub struct ConcurrencyRow {
    /// Strategy.
    pub strategy: DequeueStrategy,
    /// Number of printers `d`.
    pub printers: usize,
    /// Mean committed prints per round.
    pub throughput: f64,
    /// Mean duplicate prints per run.
    pub duplicates: f64,
    /// Max queue position at dequeue time across runs (the paper's §5
    /// bound: stays below the concurrency).
    pub max_deq_position: usize,
    /// Max concurrent dequeuers observed (the `C_k` state).
    pub max_concurrent: usize,
}

/// Runs the sweep.
pub fn sweep(
    printer_counts: &[usize],
    jobs: usize,
    abort_probability: f64,
    seeds: u32,
) -> Vec<ConcurrencyRow> {
    let mut rows = Vec::new();
    for &strategy in &[
        DequeueStrategy::BlockingFifo,
        DequeueStrategy::Optimistic,
        DequeueStrategy::Pessimistic,
    ] {
        for &printers in printer_counts {
            let mut throughput = 0.0;
            let mut duplicates = 0.0;
            let mut max_deq_position = 0;
            let mut max_concurrent = 0;
            for seed in 0..seeds {
                let report = Spooler::new(SpoolerConfig {
                    strategy,
                    printers,
                    jobs,
                    print_time: 4,
                    abort_probability,
                    seed: u64::from(seed) * 31 + printers as u64,
                })
                .run();
                throughput += report.throughput;
                duplicates += report.duplicates as f64;
                max_deq_position = max_deq_position.max(report.max_deq_position);
                max_concurrent = max_concurrent.max(report.max_concurrent_dequeuers);
            }
            rows.push(ConcurrencyRow {
                strategy,
                printers,
                throughput: throughput / f64::from(seeds),
                duplicates: duplicates / f64::from(seeds),
                max_deq_position,
                max_concurrent,
            });
        }
    }
    rows
}

/// Renders the sweep.
pub fn render(rows: &[ConcurrencyRow]) -> Table {
    let mut t = Table::new([
        "strategy",
        "printers d",
        "throughput (prints/round)",
        "dup prints (mean)",
        "max deq position",
        "max concurrent Deq",
    ]);
    for r in rows {
        t.row([
            format!("{:?}", r.strategy),
            r.printers.to_string(),
            format!("{:.3}", r.throughput),
            format!("{:.2}", r.duplicates),
            r.max_deq_position.to_string(),
            r.max_concurrent.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_for(strategy: DequeueStrategy, rows: &[ConcurrencyRow]) -> Vec<&ConcurrencyRow> {
        rows.iter().filter(|r| r.strategy == strategy).collect()
    }

    #[test]
    fn shapes_match_the_paper() {
        let rows = sweep(&[1, 4], 24, 0.0, 4);

        let blocking = rows_for(DequeueStrategy::BlockingFifo, &rows);
        let optimistic = rows_for(DequeueStrategy::Optimistic, &rows);
        let pessimistic = rows_for(DequeueStrategy::Pessimistic, &rows);

        // Optimistic scales with d; blocking does not (ratio d=4 / d=1).
        let opt_gain = optimistic[1].throughput / optimistic[0].throughput;
        let blk_gain = blocking[1].throughput / blocking[0].throughput;
        assert!(
            opt_gain > 2.0,
            "optimistic should scale, gain {opt_gain:.2}"
        );
        assert!(
            blk_gain < 1.5,
            "blocking should not scale, gain {blk_gain:.2}"
        );

        // Degradation bounds: optimistic disorder < d, no duplicates;
        // pessimistic in order, duplicates appear.
        assert!(optimistic[1].max_deq_position < 4);
        assert_eq!(optimistic[1].duplicates, 0.0);
        assert_eq!(pessimistic[1].max_deq_position, 0);
        assert!(pessimistic[1].duplicates > 0.0);

        // Blocking at any d is FIFO: no anomalies.
        for r in &blocking {
            assert_eq!(r.duplicates, 0.0);
            assert_eq!(r.max_deq_position, 0);
        }
    }

    #[test]
    fn render_has_all_rows() {
        let rows = sweep(&[1, 2], 10, 0.0, 2);
        assert_eq!(render(&rows).len(), 6);
    }
}
