//! The flight-recorder experiment layer: shared probed-run helpers the
//! scaling/symmetry/theorem4 experiments time their engine paths with,
//! and the probe-overhead gate (`BENCH_profile_overhead.json`).
//!
//! The overhead experiment answers the question the zero-cost claim
//! begs: what does an *enabled* probe cost? It interleaves baseline
//! (compiled-out `NoopProbe`) and probed runs of the (3, 8) shared
//! taxi-lattice walk in an ABBA pattern — baseline, probed, probed,
//! baseline per rep — so clock drift and thermal state cancel, takes
//! the median per-rep ratio, and gates at ≤ [`TARGET_OVERHEAD_PCT`]%.
//! It also asserts the exact-sum attribution invariant on the live
//! tree: span self-times must sum to the root total to the nanosecond.

use std::hint::black_box;
use std::time::Instant;

use relax_core::theorem4::{
    verify_taxi_lattice, verify_taxi_lattice_perpoint_probed, verify_taxi_lattice_probed,
    TaxiVerification,
};
use relax_trace::{Probe, ProfileReport};

use crate::table::Table;

/// The gate: enabled-probe overhead allowed on the (3, 8) shared walk.
pub const TARGET_OVERHEAD_PCT: f64 = 5.0;

/// A computation's result together with the profile recorded while it
/// ran. The wall time every experiment reports is the **root span
/// total** — one clock, the probe's, instead of a second hand-rolled
/// `Instant` around the call.
#[derive(Debug, Clone)]
pub struct ProbedRun<T> {
    /// What the computation returned.
    pub result: T,
    /// The reconstructed profile.
    pub report: ProfileReport,
}

impl<T> ProbedRun<T> {
    /// Wall nanoseconds of the run's top-level spans.
    pub fn wall_ns(&self) -> u128 {
        u128::from(self.report.total_ns())
    }
}

/// Runs `f` under a fresh recording probe and reconstructs its report.
///
/// # Panics
///
/// Panics if `f` leaves spans unbalanced (a bug in the instrumented
/// code, not in the caller).
pub fn probed<T>(f: impl FnOnce(&mut Probe) -> T) -> ProbedRun<T> {
    let mut probe = Probe::enabled();
    let result = f(&mut probe);
    let report = probe.report().expect("profiled run left spans balanced");
    ProbedRun { result, report }
}

/// The shared-walk taxi verification under the flight recorder.
pub fn profiled_shared(items: &[i64], max_len: usize) -> ProbedRun<TaxiVerification> {
    probed(|p| verify_taxi_lattice_probed(items, max_len, p))
}

/// The per-point taxi verification under the flight recorder.
pub fn profiled_perpoint(items: &[i64], max_len: usize) -> ProbedRun<TaxiVerification> {
    probed(|p| verify_taxi_lattice_perpoint_probed(items, max_len, p))
}

/// One probe-overhead measurement.
#[derive(Debug, Clone)]
pub struct OverheadResult {
    /// The item alphabet used.
    pub items: Vec<i64>,
    /// The history-length bound.
    pub max_len: usize,
    /// ABBA repetitions.
    pub reps: usize,
    /// Fastest single baseline (NoopProbe) run.
    pub baseline_min_ns: u128,
    /// Fastest single probed run.
    pub probed_min_ns: u128,
    /// Median per-rep probed/baseline wall-time ratio.
    pub median_ratio: f64,
    /// Every run (both flavors) verified all four lattice points.
    pub all_hold: bool,
    /// The last probed run's profile (for the span tree and folded
    /// export).
    pub report: ProfileReport,
}

impl OverheadResult {
    /// Median overhead of the enabled probe, in percent.
    pub fn overhead_pct(&self) -> f64 {
        100.0 * (self.median_ratio - 1.0)
    }

    /// Does span self-time sum exactly to the root total?
    pub fn exact_attribution(&self) -> bool {
        self.report.self_sum_ns() == self.report.total_ns()
    }

    /// The CI gate: overhead within target, attribution exact, every
    /// run verified.
    pub fn within_target(&self) -> bool {
        self.overhead_pct() <= TARGET_OVERHEAD_PCT && self.exact_attribution() && self.all_hold
    }
}

/// Measures enabled-probe overhead on the shared taxi-lattice walk with
/// `reps` ABBA repetitions.
pub fn measure_overhead(items: &[i64], max_len: usize, reps: usize) -> OverheadResult {
    let baseline = |all_hold: &mut bool| {
        let t = Instant::now();
        let v = black_box(verify_taxi_lattice(items, max_len));
        let ns = t.elapsed().as_nanos();
        *all_hold &= v.holds();
        ns
    };
    let probed_run = |all_hold: &mut bool| {
        let mut probe = Probe::enabled();
        let t = Instant::now();
        let v = black_box(verify_taxi_lattice_probed(items, max_len, &mut probe));
        let ns = t.elapsed().as_nanos();
        *all_hold &= v.holds();
        (ns, probe)
    };

    let mut all_hold = true;
    // Warm-up: fault in code paths and allocator arenas for both flavors.
    for _ in 0..2 {
        let _ = baseline(&mut all_hold);
        let _ = probed_run(&mut all_hold);
    }

    let mut ratios = Vec::with_capacity(reps);
    let mut baseline_min_ns = u128::MAX;
    let mut probed_min_ns = u128::MAX;
    let mut last_probe = None;
    for _ in 0..reps {
        let b1 = baseline(&mut all_hold);
        let (e1, _p) = probed_run(&mut all_hold);
        let (e2, p) = probed_run(&mut all_hold);
        let b2 = baseline(&mut all_hold);
        last_probe = Some(p);
        baseline_min_ns = baseline_min_ns.min(b1).min(b2);
        probed_min_ns = probed_min_ns.min(e1).min(e2);
        ratios.push((e1 + e2) as f64 / (b1 + b2).max(1) as f64);
    }
    ratios.sort_by(f64::total_cmp);
    let median_ratio = ratios[ratios.len() / 2];
    let report = last_probe
        .expect("reps >= 1")
        .report()
        .expect("walk left spans balanced");
    OverheadResult {
        items: items.to_vec(),
        max_len,
        reps,
        baseline_min_ns,
        probed_min_ns,
        median_ratio,
        all_hold,
        report,
    }
}

/// Renders the overhead summary table.
pub fn table(r: &OverheadResult) -> Table {
    let mut t = Table::new(["quantity", "value"]);
    t.row([
        "workload".into(),
        format!("shared walk, items {:?}, len ≤ {}", r.items, r.max_len),
    ]);
    t.row(["reps (ABBA)".into(), r.reps.to_string()]);
    t.row([
        "baseline min".into(),
        format!("{:.3} ms", r.baseline_min_ns as f64 / 1e6),
    ]);
    t.row([
        "probed min".into(),
        format!("{:.3} ms", r.probed_min_ns as f64 / 1e6),
    ]);
    t.row(["median ratio".into(), format!("{:.4}", r.median_ratio)]);
    t.row([
        "overhead".into(),
        format!(
            "{:+.2}% (target ≤ {TARGET_OVERHEAD_PCT:.0}%)",
            r.overhead_pct()
        ),
    ]);
    t.row([
        "exact attribution".into(),
        r.exact_attribution().to_string(),
    ]);
    t.row(["all runs hold".into(), r.all_hold.to_string()]);
    t
}

/// Renders the `BENCH_profile_overhead.json` payload.
pub fn to_json(r: &OverheadResult) -> String {
    format!(
        "{{\"bench\":\"profile_overhead\",\"workload\":\"taxi_shared_walk\",\
         \"items\":{},\"max_len\":{},\"reps\":{},\
         \"baseline_min_ns\":{},\"probed_min_ns\":{},\"median_ratio\":{:.4},\
         \"overhead_pct\":{:.2},\"span_total_ns\":{},\"span_self_sum_ns\":{},\
         \"exact_attribution\":{},\"all_hold\":{},\
         \"target_pct\":{TARGET_OVERHEAD_PCT:.1},\"within_target\":{}}}\n",
        r.items.len(),
        r.max_len,
        r.reps,
        r.baseline_min_ns,
        r.probed_min_ns,
        r.median_ratio,
        r.overhead_pct(),
        r.report.total_ns(),
        r.report.self_sum_ns(),
        r.exact_attribution(),
        r.all_hold,
        r.within_target()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probed_runs_agree_with_unprofiled_results() {
        let shared = profiled_shared(&[1, 2], 5);
        assert!(shared.result.holds());
        let sizes: Vec<usize> = shared
            .result
            .points
            .iter()
            .map(|p| p.language_size)
            .collect();
        assert_eq!(sizes, vec![209, 269, 287, 373]);
        // The probe's wall clock covers the whole verification.
        assert!(shared.wall_ns() > 0);
        assert_eq!(shared.report.roots[0].name, "theorem4");

        let perpoint = profiled_perpoint(&[1, 2], 4);
        assert!(perpoint.result.holds());
        assert!(perpoint
            .report
            .aggregated_paths()
            .iter()
            .any(|h| h.path == "theorem4;point_11;product_walk"));
    }

    #[test]
    fn overhead_measurement_is_exact_and_renders() {
        let r = measure_overhead(&[1, 2], 4, 3);
        assert!(r.all_hold);
        assert!(r.exact_attribution());
        assert!(r.baseline_min_ns > 0 && r.probed_min_ns > 0);
        let json = to_json(&r);
        assert!(json.contains("\"bench\":\"profile_overhead\""));
        assert!(json.contains("\"within_target\":"));
        assert!(json.contains("\"exact_attribution\":true"));
        assert_eq!(table(&r).len(), 8);
        // The folded export re-parses and sums to the root total.
        let parsed = relax_trace::parse_folded(&r.report.to_folded()).unwrap();
        let sum: u64 = parsed.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, r.report.total_ns());
    }
}
