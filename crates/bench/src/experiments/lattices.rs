//! The lattice diagrams: §3.3's constraint lattice and Figure 4-2.

use relax_automata::{check_reverse_inclusion_lattice, RelaxationMap};
use relax_core::lattices::semiqueue::{SemiqueueLattice, SsQueueLattice};
use relax_core::lattices::taxi::{TaxiLattice, TaxiPoint};
use relax_queues::queue_alphabet;

use crate::table::Table;

/// The §3.3 taxi lattice as a table: constraint set → behavior →
/// tolerated anomalies, plus the bounded homomorphism check verdict.
pub fn taxi_lattice_table(max_len: usize) -> (Table, bool) {
    let lattice = TaxiLattice::new();
    let mut t = Table::new(["constraints", "behavior", "tolerated anomalies"]);
    for point in TaxiPoint::all() {
        let c = lattice.constraints(point);
        t.row([
            lattice.universe().render(c),
            point.behavior_name().to_string(),
            point.anomalies().to_string(),
        ]);
    }
    let check = check_reverse_inclusion_lattice(&lattice, &queue_alphabet(&[1, 2]), max_len);
    (t, check.is_ok())
}

/// Figure 4-2: the relaxation lattice for an `n`-item semiqueue, plus the
/// bounded homomorphism check verdict.
pub fn figure_4_2(n: usize, max_len: usize) -> (Table, bool) {
    let lattice = SemiqueueLattice::new(n);
    let mut t = Table::new(["Constraints", "Behavior"]);
    for (sets, behavior) in lattice.figure_4_2_table() {
        t.row([sets.join(", "), behavior]);
    }
    let check = check_reverse_inclusion_lattice(&lattice, &queue_alphabet(&[1, 2]), max_len);
    (t, check.is_ok())
}

/// §4.2.2's combined lattice: the `SSqueue_{j,k}` points, plus the
/// bounded homomorphism check verdict.
pub fn ssqueue_lattice_table(m: usize, n: usize, max_len: usize) -> (Table, bool) {
    let lattice = SsQueueLattice::new(m, n);
    let mut t = Table::new(["(j, k)", "behavior"]);
    for j in 1..=m {
        for k in 1..=n {
            let name = match (j, k) {
                (1, 1) => "SSqueue_{1,1} (FIFO queue)".to_string(),
                (1, k) => format!("SSqueue_{{1,{k}}} = Semiqueue_{k}"),
                (j, 1) => format!("SSqueue_{{{j},1}} = Stuttering_{j} Queue"),
                (j, k) => format!("SSqueue_{{{j},{k}}}"),
            };
            t.row([format!("({j}, {k})"), name]);
        }
    }
    let check = check_reverse_inclusion_lattice(&lattice, &queue_alphabet(&[1, 2]), max_len);
    (t, check.is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxi_table_has_four_points_and_passes() {
        let (t, ok) = taxi_lattice_table(4);
        assert_eq!(t.len(), 4);
        assert!(ok);
    }

    #[test]
    fn ssqueue_table_renders_and_passes() {
        let (t, ok) = ssqueue_lattice_table(2, 2, 4);
        assert_eq!(t.len(), 4);
        assert!(ok);
        assert!(t.to_string().contains("FIFO queue"));
    }

    #[test]
    fn ssqueue_join_preservation_genuinely_fails_from_length_5() {
        // Found once the subset-graph engine made bound 5 affordable:
        // Enq(1)·Enq(2)·Enq(1)·Deq(1)·Deq(1) is accepted by Stuttering_2 and
        // Semiqueue_2 separately, but φ maps their join (the full constraint
        // set) to SSqueue_{1,1} = FIFO, which rejects it — so the two-chain
        // map preserves joins only up to length 4. Confirmed against the
        // naive enumerators, so this pins a property of the lattice, not of
        // the engine.
        let (_, ok4) = ssqueue_lattice_table(2, 2, 4);
        assert!(ok4);
        let (_, ok5) = ssqueue_lattice_table(2, 2, 5);
        assert!(!ok5);
    }

    #[test]
    fn figure_4_2_matches_paper() {
        let (t, ok) = figure_4_2(3, 4);
        assert_eq!(t.len(), 3);
        assert!(ok);
        let text = t.to_string();
        assert!(text.contains("Semiqueue_1 (FIFO queue)"));
        assert!(text.contains("Semiqueue_3 (bag)"));
    }
}
