//! §3.3's probabilistic claim: `P(miss top n) = (0.1)^n`.

use relax_core::prob::{top_n_miss_analytic, top_n_miss_monte_carlo};

use crate::table::Table;

/// One row of the comparison.
#[derive(Debug, Clone)]
pub struct TopNRow {
    /// The `n` of "top n".
    pub n: u32,
    /// Analytic probability `(1-p)^n`.
    pub analytic: f64,
    /// Monte Carlo estimate.
    pub simulated: f64,
}

/// Runs the sweep at the paper's `p = 0.9` for `n = 1..=max_n`.
pub fn run(max_n: u32, trials: u32, seed: u64) -> Vec<TopNRow> {
    (1..=max_n)
        .map(|n| TopNRow {
            n,
            analytic: top_n_miss_analytic(0.9, n),
            simulated: top_n_miss_monte_carlo(0.9, n, max_n.max(10), trials, seed + u64::from(n)),
        })
        .collect()
}

/// Renders the rows.
pub fn render(rows: &[TopNRow]) -> Table {
    let mut t = Table::new(["n", "analytic (0.1)^n", "monte carlo", "rel. err"]);
    for r in rows {
        let rel = if r.analytic > 0.0 {
            (r.simulated - r.analytic).abs() / r.analytic
        } else {
            0.0
        };
        t.row([
            r.n.to_string(),
            format!("{:.6}", r.analytic),
            format!("{:.6}", r.simulated),
            format!("{:.1}%", rel * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_analytic_within_noise() {
        let rows = run(3, 300_000, 7);
        for r in &rows {
            assert!(
                (r.simulated - r.analytic).abs() < r.analytic * 0.25 + 0.0005,
                "n={}: {} vs {}",
                r.n,
                r.simulated,
                r.analytic
            );
        }
        assert!((rows[0].analytic - 0.1).abs() < 1e-12);
        assert!((rows[2].analytic - 0.001).abs() < 1e-12);
    }

    #[test]
    fn renders_all_rows() {
        let rows = run(2, 10_000, 1);
        assert_eq!(render(&rows).len(), 2);
    }
}
