//! Integration check for the adversarial fault campaigns: the
//! root-cause engine's minimal fault cut must match the injected fault
//! pattern on every campaign, across seeds.

use relax_bench::experiments::campaign::{run_all, FaultClass, CAMPAIGNS};

#[test]
fn every_campaign_verdict_holds_across_seeds() {
    for seed in [0xCA11, 7, 99] {
        let outcomes = run_all(seed);
        assert_eq!(outcomes.len(), CAMPAIGNS.len());
        for o in &outcomes {
            assert!(o.verdict_ok(), "seed {seed}: campaign failed: {o:?}");
        }
        // The cut classes are exact, not merely overlapping: each
        // campaign's attribution names its own fault and nothing else.
        assert_eq!(outcomes[0].observed, vec![FaultClass::Gray]);
        assert_eq!(outcomes[1].observed, vec![FaultClass::Partition]);
        assert_eq!(outcomes[2].observed, vec![FaultClass::LinkBlock]);
        assert_eq!(outcomes[3].observed, vec![]);
        assert!(outcomes[4].observed.contains(&FaultClass::Partition));
        assert!(outcomes[4].observed.contains(&FaultClass::Gray));
    }
}

#[test]
fn degrading_campaigns_exhaust_the_pq_budget_and_masked_ones_do_not() {
    let outcomes = run_all(0xCA11);
    for o in &outcomes {
        if o.expect_masked {
            assert!(!o.slo_exhausted, "masked campaign spent budget: {o:?}");
            assert_eq!(o.transitions, 0, "{o:?}");
        } else {
            assert!(o.slo_exhausted, "budget should exhaust: {o:?}");
        }
    }
}
