//! Metrics: counters, gauges, exact histograms, and a named registry.
//!
//! [`Counter`] and [`Histogram`] began life in `relax-sim` (which still
//! re-exports them); they live here so the quorum runtime and the
//! experiment binaries can share one [`Registry`] and merge per-trial
//! metrics into sweep-level summaries.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// A monotone event counter with a success/failure split, used for
/// availability measurements (fraction of operations that found a
/// quorum, etc.).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    successes: u64,
    failures: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Records a success.
    pub fn success(&mut self) {
        self.successes += 1;
    }

    /// Records a failure.
    pub fn failure(&mut self) {
        self.failures += 1;
    }

    /// Records an outcome.
    pub fn record(&mut self, ok: bool) {
        if ok {
            self.success();
        } else {
            self.failure();
        }
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.successes + self.failures
    }

    /// Successes recorded.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Failures recorded.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Success fraction in `[0, 1]`; `None` before any event.
    pub fn rate(&self) -> Option<f64> {
        if self.total() == 0 {
            None
        } else {
            Some(self.successes as f64 / self.total() as f64)
        }
    }

    /// Adds another counter's tallies into this one.
    pub fn merge(&mut self, other: &Counter) {
        self.successes += other.successes;
        self.failures += other.failures;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rate() {
            Some(r) => write!(f, "{}/{} ({:.1}%)", self.successes, self.total(), r * 100.0),
            None => write!(f, "0/0"),
        }
    }
}

/// A last-value-wins instantaneous measurement (queue depths, frontier
/// sizes, in-flight message counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    value: i64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the current value.
    pub fn set(&mut self, value: i64) {
        self.value = value;
    }

    /// Adjusts the current value by a delta.
    pub fn add(&mut self, delta: i64) {
        self.value += delta;
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value
    }
}

/// The unit a histogram's duration samples are measured in.
///
/// Samples are stored as exact raw `u64`s either way, and every
/// statistic — mean, min/max, nearest-rank quantiles — is unit-agnostic
/// arithmetic over those samples, so the time base deliberately does
/// *not* fork the math: the only thing it selects is the default
/// exposition bucket layout (sim ticks cluster in 1..10⁴; wall-clock
/// nanoseconds cluster in 10³..10⁹). A tick histogram and a nanosecond
/// histogram fed identical samples report identical quantiles, pinned
/// by `tick_and_nano_quantile_math_agree`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TimeBase {
    /// Discrete simulator ticks (the default; see [`DEFAULT_BUCKETS`]).
    #[default]
    SimTicks,
    /// Wall-clock nanoseconds from the threaded runtime backend (see
    /// [`WALL_NANOS_BUCKETS`]).
    WallNanos,
}

impl TimeBase {
    /// The default exposition bucket bounds for this base.
    pub fn default_buckets(self) -> &'static [u64] {
        match self {
            TimeBase::SimTicks => DEFAULT_BUCKETS,
            TimeBase::WallNanos => WALL_NANOS_BUCKETS,
        }
    }
}

/// A latency histogram over raw duration samples (exact, not bucketed;
/// the sample counts in this workspace's experiments are small enough
/// that exactness is cheaper than binning). The [`TimeBase`] records
/// which unit the samples carry; it affects exposition layout only.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
    /// Explicit bucket upper bounds for text exposition (sorted,
    /// deduplicated). `None` renders with the time base's default
    /// layout. Purely a rendering layout: samples stay exact either way.
    buckets: Option<Box<[u64]>>,
    /// The unit of the samples (default: sim ticks).
    time_base: TimeBase,
}

/// Bucket upper bounds used by [`Registry::render_prometheus`] for
/// [`TimeBase::SimTicks`] histograms without an explicit layout.
pub const DEFAULT_BUCKETS: &[u64] = &[1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000];

/// Bucket upper bounds used for [`TimeBase::WallNanos`] histograms
/// without an explicit layout: 1µs to 1s.
pub const WALL_NANOS_BUCKETS: &[u64] = &[
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// An empty histogram with an explicit exposition bucket layout
    /// (bounds are sorted and deduplicated).
    pub fn with_buckets(bounds: &[u64]) -> Self {
        let mut h = Histogram::new();
        h.set_buckets(bounds);
        h
    }

    /// An empty histogram recording samples in the given time base.
    pub fn with_time_base(base: TimeBase) -> Self {
        let mut h = Histogram::new();
        h.time_base = base;
        h
    }

    /// Declares the unit the samples carry. Affects only the default
    /// exposition bucket layout; all statistics are unit-agnostic.
    pub fn set_time_base(&mut self, base: TimeBase) {
        self.time_base = base;
    }

    /// The unit the samples carry.
    pub fn time_base(&self) -> TimeBase {
        self.time_base
    }

    /// Sets the exposition bucket layout (sorted, deduplicated).
    pub fn set_buckets(&mut self, bounds: &[u64]) {
        let mut b: Vec<u64> = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        self.buckets = Some(b.into_boxed_slice());
    }

    /// The explicit exposition bucket layout, if one was set.
    pub fn buckets(&self) -> Option<&[u64]> {
        self.buckets.as_deref()
    }

    /// Cumulative sample counts per bucket bound (Prometheus `le`
    /// semantics: each entry counts samples `<= bound`). Uses the
    /// explicit layout when set, the time base's default layout
    /// otherwise; the implicit `+Inf` bucket is [`Histogram::len`].
    pub fn bucket_counts(&self) -> Vec<(u64, u64)> {
        let bounds = self
            .buckets
            .as_deref()
            .unwrap_or_else(|| self.time_base.default_buckets());
        bounds
            .iter()
            .map(|&b| {
                let n = self.samples.iter().filter(|&&s| s <= b).count() as u64;
                (b, n)
            })
            .collect()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.samples.iter().sum()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True before any sample.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64)
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1, nearest-rank); `None` when empty.
    /// `q = 0` yields the smallest sample, `q = 1` the largest.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Median (p50).
    pub fn median(&mut self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// The 50th percentile.
    pub fn p50(&mut self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// The 95th percentile.
    pub fn p95(&mut self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// The 99th percentile.
    pub fn p99(&mut self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Appends all of another histogram's samples into this one.
    ///
    /// Mismatched exposition bucket layouts merge to the *union* of the
    /// two bounds sets — lossless here, because samples are stored
    /// exactly and bucket counts are recomputed at render time (a
    /// pre-binned histogram could not do this). If only one side has an
    /// explicit layout, it wins.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
        // A non-default time base wins, mirroring the explicit-layout
        // rule below (merging mixed bases is a caller bug either way —
        // the samples would be incommensurable).
        if other.time_base != TimeBase::default() {
            self.time_base = other.time_base;
        }
        match (&self.buckets, &other.buckets) {
            (Some(a), Some(b)) if a != b => {
                let mut union: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
                union.sort_unstable();
                union.dedup();
                self.buckets = Some(union.into_boxed_slice());
            }
            (None, Some(b)) => {
                self.buckets = Some(b.clone());
            }
            _ => {}
        }
    }
}

/// Canonical gauge names for wire-level accounting, set by experiment
/// harnesses from the sim world's byte/message counters and summed
/// across trials with [`Registry::merge_accumulating`].
///
/// Names follow the Prometheus convention of putting the unit last
/// (`_bytes`, not `bytes_` mid-name) — see [`lint_name`], which the
/// naming test applies to every canonical metric name in the workspace.
pub mod wire {
    /// Modeled payload bytes offered to the network.
    pub const BYTES_SHIPPED: &str = "wire_shipped_bytes";
    /// Messages offered to the network.
    pub const MESSAGES_SENT: &str = "wire_messages_sent";
}

/// Checks a metric base name against the workspace's Prometheus naming
/// rules; returns a violation description, or `None` when the name is
/// clean. The rules:
///
/// * snake_case: lowercase letters, digits, and `_`, starting with a
///   letter;
/// * no reserved suffix — `_total`, `_bucket`, `_sum`, `_count`, and
///   `_quantile` are appended by [`Registry::render_prometheus`], so a
///   base name carrying one would collide with the generated series;
/// * unit last: a name mentioning `bytes` must end in `_bytes` (sim
///   durations use `_ticks` rather than `_seconds` — the simulator's
///   clock is discrete, and mislabeling ticks as seconds would be the
///   real convention violation).
pub fn lint_name(name: &str) -> Option<String> {
    let mut chars = name.chars();
    match chars.next() {
        Some('a'..='z') => {}
        _ => return Some(format!("{name:?}: must start with a lowercase letter")),
    }
    if !chars.all(|c| matches!(c, 'a'..='z' | '0'..='9' | '_')) {
        return Some(format!("{name:?}: not snake_case"));
    }
    for suffix in ["_total", "_bucket", "_sum", "_count", "_quantile"] {
        if name.ends_with(suffix) {
            return Some(format!(
                "{name:?}: reserved suffix {suffix} (generated by the exposition)"
            ));
        }
    }
    if name.contains("bytes") && !name.ends_with("_bytes") {
        return Some(format!("{name:?}: unit must come last (…_bytes)"));
    }
    None
}

/// A named collection of counters, gauges, and histograms.
///
/// Backed by `BTreeMap`s so summaries and JSON render in a stable order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter with this name, created zeroed on first use.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_string()).or_default()
    }

    /// The gauge with this name, created zeroed on first use.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        self.gauges.entry(name.to_string()).or_default()
    }

    /// The histogram with this name, created empty on first use.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// The histogram with this name, created in the given [`TimeBase`]
    /// on first use (an existing histogram keeps its base — the base is
    /// a property of the series, not of the caller).
    pub fn histogram_in(&mut self, name: &str, base: TimeBase) -> &mut Histogram {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::with_time_base(base))
    }

    /// Looks up a counter without creating it.
    pub fn get_counter(&self, name: &str) -> Option<&Counter> {
        self.counters.get(name)
    }

    /// Looks up a gauge without creating it.
    pub fn get_gauge(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    /// Looks up a histogram without creating it.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one: counters and histograms
    /// accumulate by name; gauges take the other's (later) value.
    pub fn merge(&mut self, other: &Registry) {
        for (name, c) in &other.counters {
            self.counter(name).merge(c);
        }
        for (name, h) in &other.histograms {
            self.histogram(name).merge(h);
        }
        for (name, g) in &other.gauges {
            self.gauge(name).set(g.value());
        }
    }

    /// Like [`Registry::merge`], but gauges *add* instead of last-wins —
    /// the right semantics when each merged registry carries a per-trial
    /// total (e.g. the [`wire`] byte counts) that should sum across
    /// trials.
    pub fn merge_accumulating(&mut self, other: &Registry) {
        for (name, c) in &other.counters {
            self.counter(name).merge(c);
        }
        for (name, h) in &other.histograms {
            self.histogram(name).merge(h);
        }
        for (name, g) in &other.gauges {
            self.gauge(name).add(g.value());
        }
    }

    /// A human-readable multi-line summary (counters with rates,
    /// histograms with mean/p50/p95/p99/max).
    pub fn summary(&mut self) -> String {
        let mut out = String::new();
        for (name, c) in &self.counters {
            let _ = writeln!(out, "counter   {name:<32} {c}");
        }
        for (name, g) in &self.gauges {
            let _ = writeln!(out, "gauge     {name:<32} {}", g.value());
        }
        let names: Vec<String> = self.histograms.keys().cloned().collect();
        for name in names {
            let h = self.histograms.get_mut(&name).expect("key just listed");
            if h.is_empty() {
                let _ = writeln!(out, "histogram {name:<32} (empty)");
            } else {
                let mean = h.mean().expect("non-empty");
                let p50 = h.p50().expect("non-empty");
                let p95 = h.p95().expect("non-empty");
                let p99 = h.p99().expect("non-empty");
                let max = h.max().expect("non-empty");
                let n = h.len();
                let _ = writeln!(
                    out,
                    "histogram {name:<32} n={n} mean={mean:.1} p50={p50} p95={p95} p99={p99} max={max}"
                );
            }
        }
        out
    }

    /// Renders the registry as one JSON object, with per-histogram
    /// derived statistics rather than raw samples.
    pub fn to_json(&mut self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, c) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"successes\":{},\"failures\":{}}}",
                crate::event::escape_json(name),
                c.successes(),
                c.failures()
            );
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (name, g) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", crate::event::escape_json(name), g.value());
        }
        out.push_str("},\"histograms\":{");
        let names: Vec<String> = self.histograms.keys().cloned().collect();
        let mut first = true;
        for name in names {
            if !first {
                out.push(',');
            }
            first = false;
            let h = self.histograms.get_mut(&name).expect("key just listed");
            if h.is_empty() {
                let _ = write!(out, "\"{}\":{{\"n\":0}}", crate::event::escape_json(&name));
            } else {
                let mean = h.mean().expect("non-empty");
                let (p50, p95, p99) = (
                    h.p50().expect("non-empty"),
                    h.p95().expect("non-empty"),
                    h.p99().expect("non-empty"),
                );
                let (min, max) = (h.min().expect("non-empty"), h.max().expect("non-empty"));
                let _ = write!(
                    out,
                    "\"{}\":{{\"n\":{},\"mean\":{mean},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"min\":{min},\"max\":{max}}}",
                    crate::event::escape_json(&name),
                    h.len()
                );
            }
        }
        out.push_str("}}");
        out
    }

    /// Prometheus text exposition (one sample per line, with `# TYPE`
    /// headers, names in stable `BTreeMap` order):
    ///
    /// * counters → `{name}_total{result="success"|"failure"}`;
    /// * gauges → `{name}`;
    /// * histograms → classic cumulative `{name}_bucket{le="…"}` series
    ///   (explicit layout or [`DEFAULT_BUCKETS`], plus `+Inf`),
    ///   `{name}_sum`, `{name}_count`, and a nearest-rank quantile
    ///   summary family `{name}_quantile{quantile="0.5"|"0.95"|"0.99"}`
    ///   (omitted while empty, since quantiles are undefined there).
    pub fn render_prometheus(&mut self) -> String {
        let mut out = String::new();
        for (name, c) in &self.counters {
            let _ = writeln!(out, "# TYPE {name}_total counter");
            let _ = writeln!(out, "{name}_total{{result=\"success\"}} {}", c.successes());
            let _ = writeln!(out, "{name}_total{{result=\"failure\"}} {}", c.failures());
        }
        for (name, g) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.value());
        }
        let names: Vec<String> = self.histograms.keys().cloned().collect();
        for name in names {
            let h = self.histograms.get_mut(&name).expect("key just listed");
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (le, n) in h.bucket_counts() {
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {n}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.len());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.len());
            if !h.is_empty() {
                let _ = writeln!(out, "# TYPE {name}_quantile gauge");
                for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                    let v = h.quantile(q).expect("non-empty");
                    let _ = writeln!(out, "{name}_quantile{{quantile=\"{label}\"}} {v}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulating_sums_gauges() {
        let mut total = Registry::new();
        for trial in 1..=3i64 {
            let mut r = Registry::new();
            r.gauge(wire::BYTES_SHIPPED).set(100 * trial);
            r.gauge(wire::MESSAGES_SENT).set(trial);
            r.counter("ops").success();
            r.histogram("lat").record(trial as u64);
            total.merge_accumulating(&r);
        }
        assert_eq!(total.gauge(wire::BYTES_SHIPPED).value(), 600);
        assert_eq!(total.gauge(wire::MESSAGES_SENT).value(), 6);
        assert_eq!(total.counter("ops").successes(), 3);
        assert_eq!(total.histogram("lat").len(), 3);
        // Plain merge would have kept only the last trial's gauge.
        let mut last_wins = Registry::new();
        let mut r = Registry::new();
        r.gauge(wire::BYTES_SHIPPED).set(300);
        last_wins.merge(&r);
        assert_eq!(last_wins.gauge(wire::BYTES_SHIPPED).value(), 300);
    }

    #[test]
    fn counter_rates() {
        let mut c = Counter::new();
        assert_eq!(c.rate(), None);
        c.success();
        c.success();
        c.failure();
        assert_eq!(c.total(), 3);
        assert!((c.rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        c.record(true);
        assert_eq!(c.successes(), 3);
        assert_eq!(c.failures(), 1);
    }

    #[test]
    fn counter_display() {
        let mut c = Counter::new();
        assert_eq!(c.to_string(), "0/0");
        c.success();
        assert_eq!(c.to_string(), "1/1 (100.0%)");
    }

    #[test]
    fn counter_merge_accumulates() {
        let mut a = Counter::new();
        a.success();
        let mut b = Counter::new();
        b.failure();
        b.failure();
        a.merge(&b);
        assert_eq!(a.successes(), 1);
        assert_eq!(a.failures(), 2);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.mean(), Some(25.0));
        assert_eq!(h.median(), Some(20));
        assert_eq!(h.quantile(1.0), Some(40));
        assert_eq!(h.quantile(0.25), Some(10));
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(40));
    }

    #[test]
    fn quantile_after_new_samples_resorts() {
        let mut h = Histogram::new();
        h.record(5);
        assert_eq!(h.median(), Some(5));
        h.record(1);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.median(), Some(1));
    }

    #[test]
    fn quantile_edge_zero_is_minimum() {
        let mut h = Histogram::new();
        for v in [30, 10, 20] {
            h.record(v);
        }
        // ceil(0 * 3) = 0 clamps to rank 1: the smallest sample.
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(0.0), h.min());
    }

    #[test]
    fn quantile_edge_single_sample_is_every_quantile() {
        let mut h = Histogram::new();
        h.record(77);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(77), "q={q}");
        }
    }

    #[test]
    fn quantile_edge_empty_is_none_for_all_q() {
        let mut h = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
    }

    #[test]
    fn merge_resorts_before_quantiles() {
        let mut a = Histogram::new();
        for v in [100, 200] {
            a.record(v);
        }
        assert_eq!(a.median(), Some(100)); // sorts a
        let mut b = Histogram::new();
        for v in [1, 2] {
            b.record(v);
        }
        a.merge(&b);
        // Post-merge ordering: quantiles must see the combined, re-sorted set.
        assert_eq!(a.len(), 4);
        assert_eq!(a.quantile(0.0), Some(1));
        assert_eq!(a.median(), Some(2));
        assert_eq!(a.quantile(1.0), Some(200));
    }

    #[test]
    fn p50_p95_p99_track_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), Some(50));
        assert_eq!(h.p95(), Some(95));
        assert_eq!(h.p99(), Some(99));
    }

    #[test]
    fn gauge_set_and_add() {
        let mut g = Gauge::new();
        assert_eq!(g.value(), 0);
        g.set(5);
        g.add(-2);
        assert_eq!(g.value(), 3);
    }

    #[test]
    fn registry_creates_on_first_use_and_merges() {
        let mut r = Registry::new();
        r.counter("ops").success();
        r.histogram("latency").record(10);
        r.gauge("inflight").set(2);

        let mut other = Registry::new();
        other.counter("ops").failure();
        other.histogram("latency").record(30);
        other.gauge("inflight").set(7);

        r.merge(&other);
        assert_eq!(r.get_counter("ops").unwrap().total(), 2);
        assert_eq!(r.get_histogram("latency").unwrap().len(), 2);
        assert_eq!(r.get_gauge("inflight").unwrap().value(), 7);
        assert!(r.get_counter("missing").is_none());
    }

    #[test]
    fn availability_ratio_with_zero_ops_is_none_never_nan() {
        // Division by a zero total must surface as None (and render as
        // "0/0"), not as NaN leaking into reports.
        let c = Counter::new();
        assert_eq!(c.rate(), None);
        assert_eq!(c.to_string(), "0/0");
        let mut merged = Counter::new();
        merged.merge(&c);
        assert_eq!(merged.rate(), None, "merging empties stays empty");
    }

    #[test]
    fn merge_of_mismatched_bucket_layouts_takes_the_union() {
        let mut a = Histogram::with_buckets(&[10, 100]);
        a.record(7);
        let mut b = Histogram::with_buckets(&[50, 100, 1000]);
        b.record(600);
        a.merge(&b);
        // Union layout, recomputed cumulative counts over exact samples.
        assert_eq!(a.buckets(), Some(&[10u64, 50, 100, 1000][..]));
        assert_eq!(
            a.bucket_counts(),
            vec![(10, 1), (50, 1), (100, 1), (1000, 2)]
        );
        // Explicit layout wins over an implicit (default) one, in both
        // merge directions.
        let mut plain = Histogram::new();
        plain.record(3);
        plain.merge(&a);
        assert_eq!(plain.buckets(), Some(&[10u64, 50, 100, 1000][..]));
        let mut c = Histogram::with_buckets(&[5]);
        c.merge(&Histogram::new());
        assert_eq!(c.buckets(), Some(&[5u64][..]));
    }

    /// The TimeBase satellite's contract: quantile math is sample-exact
    /// and unit-agnostic, so a tick histogram and a nanosecond histogram
    /// fed identical samples agree on every statistic. Only the default
    /// exposition layout differs.
    #[test]
    fn tick_and_nano_quantile_math_agree() {
        let mut ticks = Histogram::new();
        let mut nanos = Histogram::with_time_base(TimeBase::WallNanos);
        assert_eq!(ticks.time_base(), TimeBase::SimTicks);
        assert_eq!(nanos.time_base(), TimeBase::WallNanos);
        // An adversarial sample set: duplicates, a zero, a huge outlier,
        // and values straddling both default bucket layouts.
        let samples = [0u64, 3, 3, 17, 250, 999, 1_000, 75_000, 2_000_000, 7];
        for &s in &samples {
            ticks.record(s);
            nanos.record(s);
        }
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            assert_eq!(ticks.quantile(q), nanos.quantile(q), "q={q}");
        }
        assert_eq!(ticks.mean(), nanos.mean());
        assert_eq!(ticks.min(), nanos.min());
        assert_eq!(ticks.max(), nanos.max());
        assert_eq!(ticks.sum(), nanos.sum());
        // The bases differ only in exposition: bucket bounds come from
        // the per-base default layout.
        let tick_bounds: Vec<u64> = ticks.bucket_counts().iter().map(|&(b, _)| b).collect();
        let nano_bounds: Vec<u64> = nanos.bucket_counts().iter().map(|&(b, _)| b).collect();
        assert_eq!(tick_bounds, DEFAULT_BUCKETS.to_vec());
        assert_eq!(nano_bounds, WALL_NANOS_BUCKETS.to_vec());
        // An explicit layout overrides the base's default, same as before.
        nanos.set_buckets(&[10, 100]);
        let explicit: Vec<u64> = nanos.bucket_counts().iter().map(|&(b, _)| b).collect();
        assert_eq!(explicit, vec![10, 100]);
    }

    #[test]
    fn merge_adopts_the_non_default_time_base() {
        let mut into = Histogram::new();
        into.record(5);
        let mut wall = Histogram::with_time_base(TimeBase::WallNanos);
        wall.record(9_000);
        into.merge(&wall);
        assert_eq!(into.time_base(), TimeBase::WallNanos);
        assert_eq!(into.len(), 2);
        // Registry helper: first use pins the base, later callers keep it.
        let mut r = Registry::new();
        r.histogram_in("lat", TimeBase::WallNanos).record(1_500);
        assert_eq!(r.histogram("lat").time_base(), TimeBase::WallNanos);
        assert_eq!(
            r.histogram_in("lat", TimeBase::SimTicks).time_base(),
            TimeBase::WallNanos,
            "existing series keeps its base"
        );
    }

    #[test]
    fn bucket_counts_default_layout_and_sum() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(3);
        h.record(20_000); // beyond the last default bound: only in +Inf
        let counts = h.bucket_counts();
        assert_eq!(counts.len(), DEFAULT_BUCKETS.len());
        assert_eq!(counts[0], (1, 1));
        assert_eq!(counts[2], (5, 2));
        assert_eq!(counts.last().copied(), Some((10_000, 2)));
        assert_eq!(h.sum(), 20_004);
    }

    #[test]
    fn render_prometheus_golden() {
        let mut r = Registry::new();
        r.counter("ops").record(true);
        r.counter("ops").record(false);
        r.gauge("calm_fast_ops").set(12);
        r.gauge("calm_quorum_ops").set(2);
        r.gauge("inflight").set(3);
        r.gauge(wire::BYTES_SHIPPED).set(4096);
        r.gauge(wire::MESSAGES_SENT).set(128);
        r.gauge("merkle_sync_rounds").set(7);
        r.gauge("viewcache_replayed_entries").set(912);
        let h = r.histogram("lat");
        h.set_buckets(&[10, 100]);
        h.record(5);
        h.record(50);
        h.record(500);
        let expected = "\
# TYPE ops_total counter
ops_total{result=\"success\"} 1
ops_total{result=\"failure\"} 1
# TYPE calm_fast_ops gauge
calm_fast_ops 12
# TYPE calm_quorum_ops gauge
calm_quorum_ops 2
# TYPE inflight gauge
inflight 3
# TYPE merkle_sync_rounds gauge
merkle_sync_rounds 7
# TYPE viewcache_replayed_entries gauge
viewcache_replayed_entries 912
# TYPE wire_messages_sent gauge
wire_messages_sent 128
# TYPE wire_shipped_bytes gauge
wire_shipped_bytes 4096
# TYPE lat histogram
lat_bucket{le=\"10\"} 1
lat_bucket{le=\"100\"} 2
lat_bucket{le=\"+Inf\"} 3
lat_sum 555
lat_count 3
# TYPE lat_quantile gauge
lat_quantile{quantile=\"0.5\"} 50
lat_quantile{quantile=\"0.95\"} 500
lat_quantile{quantile=\"0.99\"} 500
";
        assert_eq!(r.render_prometheus(), expected);
        // Rendering is idempotent (quantile calls sort in place).
        assert_eq!(r.render_prometheus(), expected);
    }

    /// Every canonical metric name the workspace emits, pinned against
    /// the naming rules. A new metric that violates the convention must
    /// be caught here, not in a dashboard.
    #[test]
    fn canonical_metric_names_pass_the_lint() {
        let canonical = [
            // span aggregation (causality.rs)
            "ops",
            "op_latency",
            "phase_network_wait",
            "phase_quorum_retry_stall",
            "phase_partition_stall",
            "phase_local_compute",
            // wire accounting
            wire::BYTES_SHIPPED,
            wire::MESSAGES_SENT,
            // staleness telemetry (staleness.rs; per-replica instances)
            "staleness_lag_entries_r0",
            "staleness_lag_ticks_r0",
            "frontier_divergence_entries_r0_r1",
            // gossip efficiency (quorum runtime exposition)
            "gossip_delta_sends",
            "gossip_full_sends",
            "viewcache_hits",
            "viewcache_misses",
            "viewcache_replayed_entries",
            "viewcache_checkpoint_hits",
            // merkle anti-entropy (quorum runtime exposition)
            "merkle_sync_rounds",
            "merkle_nodes_exchanged",
            "merkle_leaf_reuses",
            // engine flight recorder (profile.rs; span/counter/gauge
            // names, each ≤ the trace's 14-byte inline label)
            "frontier_nodes",
            "left_sets",
            "right_sets",
            "arena_bytes",
            "cons_used",
            "cons_slots",
            "cons_load_pct",
            "row_fills",
            "row_hits",
            "orbit_folds",
            "orbit_nodes",
            "lang_size",
            "peak_frontier",
            "vc_hits",
            "vc_misses",
            "vc_replay",
            "vc_cp_hits",
            "gossip_delta",
            "gossip_full",
            "merkle_rounds",
            "merkle_nodes",
            // threaded wall-clock backend (relax-quorum threaded.rs;
            // nanosecond time base)
            "realtime_op_latency_nanos",
            "realtime_commit_batch_ops",
            "realtime_shard_rounds",
            // CALM scheduling (both quorum backends)
            "calm_fast_ops",
            "calm_quorum_ops",
        ];
        for name in canonical {
            assert_eq!(lint_name(name), None, "metric name {name:?} fails lint");
        }
    }

    #[test]
    fn lint_rejects_unconventional_names() {
        for (bad, why) in [
            ("wire_bytes_shipped", "unit not last"),
            ("ops_total", "reserved suffix"),
            ("lat_bucket", "reserved suffix"),
            ("lat_sum", "reserved suffix"),
            ("retry_count", "reserved suffix"),
            ("lat_quantile", "reserved suffix"),
            ("OpsDone", "not snake_case"),
            ("op-latency", "not snake_case"),
            ("_private", "leading underscore"),
            ("9lives", "leading digit"),
        ] {
            assert!(lint_name(bad).is_some(), "{bad:?} should fail ({why})");
        }
    }

    #[test]
    fn render_prometheus_empty_histogram_omits_quantiles() {
        let mut r = Registry::new();
        r.histogram("lat").set_buckets(&[10]);
        let text = r.render_prometheus();
        assert!(text.contains("lat_bucket{le=\"10\"} 0"), "{text}");
        assert!(text.contains("lat_count 0"), "{text}");
        assert!(!text.contains("quantile"), "{text}");
    }

    #[test]
    fn registry_summary_and_json_are_stable() {
        let mut r = Registry::new();
        r.counter("enq").record(true);
        r.histogram("lat").record(4);
        r.histogram("lat").record(8);
        let s = r.summary();
        assert!(s.contains("counter   enq"));
        assert!(s.contains("p95=8"));
        let j = r.to_json();
        assert!(j.starts_with("{\"counters\":{"));
        assert!(j.contains("\"enq\":{\"successes\":1,\"failures\":0}"));
        assert!(j.contains("\"lat\":{\"n\":2,\"mean\":6,"));
        // Rendering twice gives the same bytes (ordering is stable).
        assert_eq!(j, r.to_json());
    }
}
