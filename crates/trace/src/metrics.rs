//! Metrics: counters, gauges, exact histograms, and a named registry.
//!
//! [`Counter`] and [`Histogram`] began life in `relax-sim` (which still
//! re-exports them); they live here so the quorum runtime and the
//! experiment binaries can share one [`Registry`] and merge per-trial
//! metrics into sweep-level summaries.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

/// A monotone event counter with a success/failure split, used for
/// availability measurements (fraction of operations that found a
/// quorum, etc.).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    successes: u64,
    failures: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Records a success.
    pub fn success(&mut self) {
        self.successes += 1;
    }

    /// Records a failure.
    pub fn failure(&mut self) {
        self.failures += 1;
    }

    /// Records an outcome.
    pub fn record(&mut self, ok: bool) {
        if ok {
            self.success();
        } else {
            self.failure();
        }
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.successes + self.failures
    }

    /// Successes recorded.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Failures recorded.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Success fraction in `[0, 1]`; `None` before any event.
    pub fn rate(&self) -> Option<f64> {
        if self.total() == 0 {
            None
        } else {
            Some(self.successes as f64 / self.total() as f64)
        }
    }

    /// Adds another counter's tallies into this one.
    pub fn merge(&mut self, other: &Counter) {
        self.successes += other.successes;
        self.failures += other.failures;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rate() {
            Some(r) => write!(f, "{}/{} ({:.1}%)", self.successes, self.total(), r * 100.0),
            None => write!(f, "0/0"),
        }
    }
}

/// A last-value-wins instantaneous measurement (queue depths, frontier
/// sizes, in-flight message counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    value: i64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the current value.
    pub fn set(&mut self, value: i64) {
        self.value = value;
    }

    /// Adjusts the current value by a delta.
    pub fn add(&mut self, delta: i64) {
        self.value += delta;
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value
    }
}

/// A latency histogram over raw tick samples (exact, not bucketed; the
/// sample counts in this workspace's experiments are small enough that
/// exactness is cheaper than binning).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True before any sample.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64)
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1, nearest-rank); `None` when empty.
    /// `q = 0` yields the smallest sample, `q = 1` the largest.
    pub fn quantile(&mut self, q: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Median (p50).
    pub fn median(&mut self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// The 50th percentile.
    pub fn p50(&mut self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// The 95th percentile.
    pub fn p95(&mut self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// The 99th percentile.
    pub fn p99(&mut self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Appends all of another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Backed by `BTreeMap`s so summaries and JSON render in a stable order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter with this name, created zeroed on first use.
    pub fn counter(&mut self, name: &str) -> &mut Counter {
        self.counters.entry(name.to_string()).or_default()
    }

    /// The gauge with this name, created zeroed on first use.
    pub fn gauge(&mut self, name: &str) -> &mut Gauge {
        self.gauges.entry(name.to_string()).or_default()
    }

    /// The histogram with this name, created empty on first use.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Looks up a counter without creating it.
    pub fn get_counter(&self, name: &str) -> Option<&Counter> {
        self.counters.get(name)
    }

    /// Looks up a gauge without creating it.
    pub fn get_gauge(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    /// Looks up a histogram without creating it.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry into this one: counters and histograms
    /// accumulate by name; gauges take the other's (later) value.
    pub fn merge(&mut self, other: &Registry) {
        for (name, c) in &other.counters {
            self.counter(name).merge(c);
        }
        for (name, h) in &other.histograms {
            self.histogram(name).merge(h);
        }
        for (name, g) in &other.gauges {
            self.gauge(name).set(g.value());
        }
    }

    /// A human-readable multi-line summary (counters with rates,
    /// histograms with mean/p50/p95/p99/max).
    pub fn summary(&mut self) -> String {
        let mut out = String::new();
        for (name, c) in &self.counters {
            let _ = writeln!(out, "counter   {name:<32} {c}");
        }
        for (name, g) in &self.gauges {
            let _ = writeln!(out, "gauge     {name:<32} {}", g.value());
        }
        let names: Vec<String> = self.histograms.keys().cloned().collect();
        for name in names {
            let h = self.histograms.get_mut(&name).expect("key just listed");
            if h.is_empty() {
                let _ = writeln!(out, "histogram {name:<32} (empty)");
            } else {
                let mean = h.mean().expect("non-empty");
                let p50 = h.p50().expect("non-empty");
                let p95 = h.p95().expect("non-empty");
                let p99 = h.p99().expect("non-empty");
                let max = h.max().expect("non-empty");
                let n = h.len();
                let _ = writeln!(
                    out,
                    "histogram {name:<32} n={n} mean={mean:.1} p50={p50} p95={p95} p99={p99} max={max}"
                );
            }
        }
        out
    }

    /// Renders the registry as one JSON object, with per-histogram
    /// derived statistics rather than raw samples.
    pub fn to_json(&mut self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, c) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"successes\":{},\"failures\":{}}}",
                crate::event::escape_json(name),
                c.successes(),
                c.failures()
            );
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (name, g) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", crate::event::escape_json(name), g.value());
        }
        out.push_str("},\"histograms\":{");
        let names: Vec<String> = self.histograms.keys().cloned().collect();
        let mut first = true;
        for name in names {
            if !first {
                out.push(',');
            }
            first = false;
            let h = self.histograms.get_mut(&name).expect("key just listed");
            if h.is_empty() {
                let _ = write!(out, "\"{}\":{{\"n\":0}}", crate::event::escape_json(&name));
            } else {
                let mean = h.mean().expect("non-empty");
                let (p50, p95, p99) = (
                    h.p50().expect("non-empty"),
                    h.p95().expect("non-empty"),
                    h.p99().expect("non-empty"),
                );
                let (min, max) = (h.min().expect("non-empty"), h.max().expect("non-empty"));
                let _ = write!(
                    out,
                    "\"{}\":{{\"n\":{},\"mean\":{mean},\"p50\":{p50},\"p95\":{p95},\"p99\":{p99},\"min\":{min},\"max\":{max}}}",
                    crate::event::escape_json(&name),
                    h.len()
                );
            }
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_rates() {
        let mut c = Counter::new();
        assert_eq!(c.rate(), None);
        c.success();
        c.success();
        c.failure();
        assert_eq!(c.total(), 3);
        assert!((c.rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        c.record(true);
        assert_eq!(c.successes(), 3);
        assert_eq!(c.failures(), 1);
    }

    #[test]
    fn counter_display() {
        let mut c = Counter::new();
        assert_eq!(c.to_string(), "0/0");
        c.success();
        assert_eq!(c.to_string(), "1/1 (100.0%)");
    }

    #[test]
    fn counter_merge_accumulates() {
        let mut a = Counter::new();
        a.success();
        let mut b = Counter::new();
        b.failure();
        b.failure();
        a.merge(&b);
        assert_eq!(a.successes(), 1);
        assert_eq!(a.failures(), 2);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.mean(), Some(25.0));
        assert_eq!(h.median(), Some(20));
        assert_eq!(h.quantile(1.0), Some(40));
        assert_eq!(h.quantile(0.25), Some(10));
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(40));
    }

    #[test]
    fn quantile_after_new_samples_resorts() {
        let mut h = Histogram::new();
        h.record(5);
        assert_eq!(h.median(), Some(5));
        h.record(1);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.median(), Some(1));
    }

    #[test]
    fn quantile_edge_zero_is_minimum() {
        let mut h = Histogram::new();
        for v in [30, 10, 20] {
            h.record(v);
        }
        // ceil(0 * 3) = 0 clamps to rank 1: the smallest sample.
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(0.0), h.min());
    }

    #[test]
    fn quantile_edge_single_sample_is_every_quantile() {
        let mut h = Histogram::new();
        h.record(77);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(77), "q={q}");
        }
    }

    #[test]
    fn quantile_edge_empty_is_none_for_all_q() {
        let mut h = Histogram::new();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
    }

    #[test]
    fn merge_resorts_before_quantiles() {
        let mut a = Histogram::new();
        for v in [100, 200] {
            a.record(v);
        }
        assert_eq!(a.median(), Some(100)); // sorts a
        let mut b = Histogram::new();
        for v in [1, 2] {
            b.record(v);
        }
        a.merge(&b);
        // Post-merge ordering: quantiles must see the combined, re-sorted set.
        assert_eq!(a.len(), 4);
        assert_eq!(a.quantile(0.0), Some(1));
        assert_eq!(a.median(), Some(2));
        assert_eq!(a.quantile(1.0), Some(200));
    }

    #[test]
    fn p50_p95_p99_track_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), Some(50));
        assert_eq!(h.p95(), Some(95));
        assert_eq!(h.p99(), Some(99));
    }

    #[test]
    fn gauge_set_and_add() {
        let mut g = Gauge::new();
        assert_eq!(g.value(), 0);
        g.set(5);
        g.add(-2);
        assert_eq!(g.value(), 3);
    }

    #[test]
    fn registry_creates_on_first_use_and_merges() {
        let mut r = Registry::new();
        r.counter("ops").success();
        r.histogram("latency").record(10);
        r.gauge("inflight").set(2);

        let mut other = Registry::new();
        other.counter("ops").failure();
        other.histogram("latency").record(30);
        other.gauge("inflight").set(7);

        r.merge(&other);
        assert_eq!(r.get_counter("ops").unwrap().total(), 2);
        assert_eq!(r.get_histogram("latency").unwrap().len(), 2);
        assert_eq!(r.get_gauge("inflight").unwrap().value(), 7);
        assert!(r.get_counter("missing").is_none());
    }

    #[test]
    fn registry_summary_and_json_are_stable() {
        let mut r = Registry::new();
        r.counter("enq").record(true);
        r.histogram("lat").record(4);
        r.histogram("lat").record(8);
        let s = r.summary();
        assert!(s.contains("counter   enq"));
        assert!(s.contains("p95=8"));
        let j = r.to_json();
        assert!(j.starts_with("{\"counters\":{"));
        assert!(j.contains("\"enq\":{\"successes\":1,\"failures\":0}"));
        assert!(j.contains("\"lat\":{\"n\":2,\"mean\":6,"));
        // Rendering twice gives the same bytes (ordering is stable).
        assert_eq!(j, r.to_json());
    }
}
