//! Hierarchical profiling spans and resource accounting: the recording
//! [`Probe`] behind [`relax_automata::probe::EngineProbe`], and the
//! [`ProfileReport`] that turns a recorded trace into exact-sum
//! self/child attribution, hot-span rankings, per-depth gauge
//! timelines, and a folded-stack export for flamegraph tooling.
//!
//! Time discipline: every span carries **both** clocks. Wall time is
//! nanoseconds since the probe was enabled, derived from one
//! [`Instant`] anchor — monotone by construction, never `SystemTime`.
//! Sim time is whatever the owner last fed [`Probe::set_sim_time`]
//! (engine walks run outside the simulator and leave it at 0).
//!
//! Exactness: a span's *self* time is its total minus the sum of its
//! children's totals. Children are properly nested, disjoint intervals
//! measured on the same monotone clock, so the subtraction never
//! underflows and self times over any subtree telescope back to the
//! root total **exactly** — `trace_analyze --profile` and the folded
//! export both assert this invariant rather than re-deriving totals.
//!
//! Cost discipline: a disabled probe records nothing and reports
//! `is_enabled() == false`; the engine's hot loops batch counter
//! increments locally and call [`EngineProbe::add`] once per depth, so
//! an *enabled* probe costs a few events per level. The compiled-out
//! baseline is [`relax_automata::probe::NoopProbe`]; the
//! `exp_profile_overhead` bench gates enabled-vs-compiled-out at ≤ 5%
//! on the (3,8) shared walk.

use std::time::Instant;

use relax_automata::probe::EngineProbe;

use crate::codec::TraceHeader;
use crate::event::{Event, EventKind, OpLabel};

fn label(name: &str) -> OpLabel {
    debug_assert!(
        name.len() <= OpLabel::CAP,
        "profile name {name:?} exceeds the {}-byte inline label",
        OpLabel::CAP
    );
    let mut l = OpLabel::default();
    l.push_str(name);
    l
}

/// The state behind an enabled probe, boxed so a disabled [`Probe`] is
/// one word and cheap to embed everywhere.
#[derive(Debug)]
struct ProbeInner {
    /// The monotone wall-clock anchor (set when the probe is enabled).
    anchor: Instant,
    /// Sim time stamped onto recorded events.
    sim_time: u64,
    /// Next event sequence number.
    seq: u64,
    /// Recorded span and gauge events, in order.
    events: Vec<Event>,
    /// Counter accumulators (totals are emitted as events on export).
    /// A linear scan over a handful of `&'static str` names beats a
    /// hash map at this size and keeps `add` allocation-free.
    counters: Vec<(&'static str, u64)>,
    /// Currently open span depth (for balance checking).
    open: usize,
}

/// A recording profiling probe.
///
/// `Probe::disabled()` (the default) swallows everything at the cost of
/// one branch; [`Probe::enabled`] anchors a monotone clock and records
/// spans, counters, and gauges as trace events. Implements
/// [`EngineProbe`], so it plugs directly into the engine's `*_probed`
/// walks.
#[derive(Debug, Default)]
pub struct Probe {
    inner: Option<Box<ProbeInner>>,
}

impl Probe {
    /// A probe that records nothing (the zero-cost default).
    pub fn disabled() -> Self {
        Probe { inner: None }
    }

    /// A recording probe, wall-clock anchored at this call.
    pub fn enabled() -> Self {
        Probe {
            inner: Some(Box::new(ProbeInner {
                anchor: Instant::now(),
                sim_time: 0,
                seq: 0,
                events: Vec::new(),
                counters: Vec::new(),
                open: 0,
            })),
        }
    }

    /// True when the probe records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Stamps subsequent events with this sim time (the runtime calls
    /// this as virtual time advances; engine walks leave it at 0).
    pub fn set_sim_time(&mut self, t: u64) {
        if let Some(i) = self.inner.as_mut() {
            i.sim_time = t;
        }
    }

    /// The recorded span/gauge events so far (no counter events — those
    /// materialize on export). Empty when disabled.
    pub fn events(&self) -> &[Event] {
        self.inner.as_ref().map_or(&[], |i| &i.events)
    }

    /// Accumulated counter totals, in first-touch order. Empty when
    /// disabled.
    pub fn counter_totals(&self) -> &[(&'static str, u64)] {
        self.inner.as_ref().map_or(&[], |i| &i.counters)
    }

    /// Number of spans currently open (nonzero inside a walk).
    pub fn open_spans(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.open)
    }

    fn push(&mut self, kind: EventKind) {
        if let Some(i) = self.inner.as_mut() {
            i.events.push(Event {
                time: i.sim_time,
                seq: i.seq,
                kind,
            });
            i.seq += 1;
        }
    }

    /// The recorded events plus one trailing `profile_counter` event
    /// per accumulated counter — the complete, self-contained profile
    /// stream.
    pub fn export_events(&self) -> Vec<Event> {
        let Some(i) = self.inner.as_ref() else {
            return Vec::new();
        };
        let mut events = i.events.clone();
        for (offset, &(name, total)) in i.counters.iter().enumerate() {
            events.push(Event {
                time: i.sim_time,
                seq: i.seq + offset as u64,
                kind: EventKind::ProfileCounter {
                    name: label(name),
                    total,
                },
            });
        }
        events
    }

    /// Renders the headered JSONL export of [`Probe::export_events`] —
    /// the same trace format every other exporter writes, so
    /// `trace_analyze --profile` re-ingests it.
    pub fn export_jsonl(&self) -> String {
        let events = self.export_events();
        let header = TraceHeader {
            version: crate::codec::FORMAT_VERSION,
            events: events.len() as u64,
            dropped_oldest: 0,
        };
        let mut out = header.to_json();
        out.push('\n');
        for e in &events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes [`Probe::export_jsonl`] to a file.
    pub fn write_jsonl(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.export_jsonl())
    }

    /// Builds the span-tree report over everything recorded so far.
    /// Fails on unbalanced spans (a walk still in progress).
    pub fn report(&self) -> Result<ProfileReport, String> {
        ProfileReport::from_events(&self.export_events())
    }
}

impl EngineProbe for Probe {
    #[inline]
    fn is_enabled(&self) -> bool {
        Probe::is_enabled(self)
    }

    fn enter(&mut self, name: &'static str) {
        if let Some(i) = self.inner.as_mut() {
            let wall_ns = i.anchor.elapsed().as_nanos() as u64;
            i.open += 1;
            let kind = EventKind::ProfileSpanEnter {
                name: label(name),
                wall_ns,
            };
            self.push(kind);
        }
    }

    fn exit(&mut self, name: &'static str) {
        if let Some(i) = self.inner.as_mut() {
            let wall_ns = i.anchor.elapsed().as_nanos() as u64;
            debug_assert!(i.open > 0, "span exit {name:?} without an open span");
            i.open = i.open.saturating_sub(1);
            let kind = EventKind::ProfileSpanExit {
                name: label(name),
                wall_ns,
            };
            self.push(kind);
        }
    }

    fn add(&mut self, name: &'static str, delta: u64) {
        if let Some(i) = self.inner.as_mut() {
            match i.counters.iter_mut().find(|(n, _)| *n == name) {
                Some((_, total)) => *total += delta,
                None => i.counters.push((name, delta)),
            }
        }
    }

    fn gauge(&mut self, name: &'static str, value: i64) {
        let kind = EventKind::ProfileGauge {
            name: label(name),
            value,
        };
        self.push(kind);
    }
}

/// One span of the reconstructed tree, with exact-sum attribution:
/// `self_ns == total_ns − Σ children.total_ns`, so self times over any
/// subtree sum back to that subtree's total exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The span's name.
    pub name: String,
    /// Wall nanoseconds from enter to exit.
    pub total_ns: u64,
    /// Wall nanoseconds not covered by child spans.
    pub self_ns: u64,
    /// Sim time at enter.
    pub begin_sim: u64,
    /// Sim time at exit.
    pub end_sim: u64,
    /// Child spans, in record order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Sum of `self_ns` over this subtree (equals `total_ns` exactly).
    pub fn self_sum_ns(&self) -> u64 {
        self.self_ns + self.children.iter().map(|c| c.self_sum_ns()).sum::<u64>()
    }
}

/// One aggregated stack path: every span whose enter-stack spelled
/// `path` (root-first, `;`-joined), with call count and summed times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSpan {
    /// The `;`-joined stack path, e.g. `theorem4;multiwalk;multi_depth`.
    pub path: String,
    /// Number of spans that ran at this path.
    pub count: u64,
    /// Summed total nanoseconds.
    pub total_ns: u64,
    /// Summed self nanoseconds.
    pub self_ns: u64,
}

/// One gauge's samples, in record order. Engine walks sample once per
/// depth, so index *k* is depth *k + 1* — the frontier growth curve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSeries {
    /// Gauge name.
    pub name: String,
    /// Samples in record order.
    pub samples: Vec<i64>,
}

/// The reconstructed profile of one trace: span trees, aggregated
/// paths, counter totals, and gauge timelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// Top-level spans, in record order.
    pub roots: Vec<SpanNode>,
    /// Counter totals, in first-seen order.
    pub counters: Vec<(String, u64)>,
    /// Gauge sample series, in first-seen order.
    pub gauges: Vec<GaugeSeries>,
}

impl ProfileReport {
    /// Reconstructs the report from a trace's events. Non-profile
    /// events interleave freely and are ignored. Fails on unbalanced or
    /// misnested spans and on a clock running backwards — a valid
    /// export can't produce either.
    pub fn from_events(events: &[Event]) -> Result<ProfileReport, String> {
        struct Open {
            name: String,
            enter_ns: u64,
            begin_sim: u64,
            children: Vec<SpanNode>,
        }
        let mut stack: Vec<Open> = Vec::new();
        let mut roots: Vec<SpanNode> = Vec::new();
        let mut counters: Vec<(String, u64)> = Vec::new();
        let mut gauges: Vec<GaugeSeries> = Vec::new();
        for e in events {
            match &e.kind {
                EventKind::ProfileSpanEnter { name, wall_ns } => stack.push(Open {
                    name: name.to_string(),
                    enter_ns: *wall_ns,
                    begin_sim: e.time,
                    children: Vec::new(),
                }),
                EventKind::ProfileSpanExit { name, wall_ns } => {
                    let open = stack
                        .pop()
                        .ok_or_else(|| format!("span exit {name:?} without a matching enter"))?;
                    if open.name != name.as_str() {
                        return Err(format!(
                            "span exit {:?} closes span {:?} (misnested)",
                            name.as_str(),
                            open.name
                        ));
                    }
                    let total_ns = wall_ns.checked_sub(open.enter_ns).ok_or_else(|| {
                        format!("span {:?}: clock ran backwards across the span", open.name)
                    })?;
                    let child_ns: u64 = open.children.iter().map(|c| c.total_ns).sum();
                    let self_ns = total_ns.checked_sub(child_ns).ok_or_else(|| {
                        format!("span {:?}: children outlast their parent", open.name)
                    })?;
                    let node = SpanNode {
                        name: open.name,
                        total_ns,
                        self_ns,
                        begin_sim: open.begin_sim,
                        end_sim: e.time,
                        children: open.children,
                    };
                    match stack.last_mut() {
                        Some(parent) => parent.children.push(node),
                        None => roots.push(node),
                    }
                }
                EventKind::ProfileCounter { name, total } => {
                    // Totals are cumulative; a later flush supersedes.
                    match counters.iter_mut().find(|(n, _)| n == name.as_str()) {
                        Some((_, t)) => *t = *total,
                        None => counters.push((name.to_string(), *total)),
                    }
                }
                EventKind::ProfileGauge { name, value } => {
                    match gauges.iter_mut().find(|g| g.name == name.as_str()) {
                        Some(g) => g.samples.push(*value),
                        None => gauges.push(GaugeSeries {
                            name: name.to_string(),
                            samples: vec![*value],
                        }),
                    }
                }
                _ => {}
            }
        }
        if let Some(open) = stack.last() {
            return Err(format!("span {:?} never exited", open.name));
        }
        Ok(ProfileReport {
            roots,
            counters,
            gauges,
        })
    }

    /// Total wall nanoseconds across the top-level spans.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Sum of self times over every span — exactly [`Self::total_ns`].
    pub fn self_sum_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.self_sum_ns()).sum()
    }

    /// One gauge's samples, if recorded.
    pub fn gauge(&self, name: &str) -> Option<&[i64]> {
        self.gauges
            .iter()
            .find(|g| g.name == name)
            .map(|g| g.samples.as_slice())
    }

    /// One counter's total, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
    }

    /// Aggregates spans by stack path, in first-visit (depth-first)
    /// order. Self times over the aggregate still sum to
    /// [`Self::total_ns`] exactly — aggregation only regroups them.
    pub fn aggregated_paths(&self) -> Vec<HotSpan> {
        fn walk(prefix: &str, node: &SpanNode, out: &mut Vec<HotSpan>) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            match out.iter_mut().find(|h| h.path == path) {
                Some(h) => {
                    h.count += 1;
                    h.total_ns += node.total_ns;
                    h.self_ns += node.self_ns;
                }
                None => out.push(HotSpan {
                    path: path.clone(),
                    count: 1,
                    total_ns: node.total_ns,
                    self_ns: node.self_ns,
                }),
            }
            for c in &node.children {
                walk(&path, c, out);
            }
        }
        let mut out = Vec::new();
        for r in &self.roots {
            walk("", r, &mut out);
        }
        out
    }

    /// The top-`k` aggregated paths by self time, descending (ties
    /// break toward first-visit order, keeping the ranking stable).
    pub fn hot_spans(&self, k: usize) -> Vec<HotSpan> {
        let mut all = self.aggregated_paths();
        all.sort_by_key(|s| std::cmp::Reverse(s.self_ns));
        all.truncate(k);
        all
    }

    /// The folded-stack export: one `path value` line per aggregated
    /// stack, values are **self** nanoseconds, so the lines of any root
    /// sum exactly to that root's total — the format standard
    /// flamegraph tooling consumes. Zero-self paths are skipped (their
    /// time lives entirely in their children).
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for h in self.aggregated_paths() {
            if h.self_ns > 0 {
                out.push_str(&h.path);
                out.push(' ');
                out.push_str(&h.self_ns.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Renders the human-readable profile view (`trace_analyze
    /// --profile`): the span tree with exact-sum attribution, top-`k`
    /// hot spans, counters, and gauge timelines.
    pub fn render(&self, top_k: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== Profile ==");
        if self.roots.is_empty() {
            let _ = writeln!(out, "\nno profile spans recorded");
            return out;
        }
        let _ = writeln!(out, "\nspan tree (calls, total, self):");
        for h in self.aggregated_paths() {
            let depth = h.path.matches(';').count();
            let name = h.path.rsplit(';').next().unwrap_or(&h.path);
            let _ = writeln!(
                out,
                "  {:indent$}{name:width$} {:>5}x {:>12} ns {:>12} ns",
                "",
                h.count,
                h.total_ns,
                h.self_ns,
                indent = 2 * depth,
                width = 20usize.saturating_sub(2 * depth),
            );
        }
        let total = self.total_ns();
        let _ = writeln!(out, "\ntop {top_k} spans by self time:");
        for h in self.hot_spans(top_k) {
            let pct = if total > 0 {
                100.0 * h.self_ns as f64 / total as f64
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {:>12} ns  {pct:>5.1}%  {:>5}x  {}",
                h.self_ns, h.count, h.path
            );
        }
        let _ = writeln!(
            out,
            "\nself-time sum: {} ns == root total: {} ns (exact)",
            self.self_sum_ns(),
            total
        );
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (name, t) in &self.counters {
                let _ = writeln!(out, "  {name:<16} {t}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges (per-depth timelines):");
            for g in &self.gauges {
                let shown: Vec<String> = g.samples.iter().take(32).map(|v| v.to_string()).collect();
                let ellipsis = if g.samples.len() > 32 { " …" } else { "" };
                let _ = writeln!(out, "  {:<16} {}{}", g.name, shown.join(" "), ellipsis);
            }
        }
        out
    }
}

/// Re-parses a folded-stack export ([`ProfileReport::to_folded`]):
/// `(path, self_ns)` per line. Used by tests to close the loop — the
/// parsed values must sum exactly to the root spans' totals.
pub fn parse_folded(text: &str) -> Result<Vec<(String, u64)>, String> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let (path, value) = l
                .rsplit_once(' ')
                .ok_or_else(|| format!("folded line without value: {l:?}"))?;
            let value: u64 = value
                .parse()
                .map_err(|e| format!("folded line {l:?}: {e}"))?;
            Ok((path.to_string(), value))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn enter(seq: u64, name: &str, wall_ns: u64) -> Event {
        Event {
            time: 0,
            seq,
            kind: EventKind::ProfileSpanEnter {
                name: label(name),
                wall_ns,
            },
        }
    }

    fn exit(seq: u64, name: &str, wall_ns: u64) -> Event {
        Event {
            time: 0,
            seq,
            kind: EventKind::ProfileSpanExit {
                name: label(name),
                wall_ns,
            },
        }
    }

    #[test]
    fn disabled_probe_records_nothing() {
        let mut p = Probe::disabled();
        assert!(!EngineProbe::is_enabled(&p));
        p.enter("walk");
        p.add("row_hits", 5);
        p.gauge("frontier_nodes", 3);
        p.exit("walk");
        assert!(p.events().is_empty());
        assert!(p.counter_totals().is_empty());
        assert!(p.export_events().is_empty());
        let report = p.report().unwrap();
        assert!(report.roots.is_empty());
        assert_eq!(report.total_ns(), 0);
    }

    #[test]
    fn enabled_probe_records_balanced_spans_and_counters() {
        let mut p = Probe::enabled();
        assert!(EngineProbe::is_enabled(&p));
        p.enter("outer");
        p.gauge("frontier_nodes", 4);
        p.enter("inner");
        p.add("row_hits", 2);
        p.add("row_hits", 3);
        p.exit("inner");
        p.exit("outer");
        assert_eq!(p.open_spans(), 0);
        assert_eq!(p.counter_totals(), &[("row_hits", 5)]);
        let report = p.report().unwrap();
        assert_eq!(report.roots.len(), 1);
        assert_eq!(report.roots[0].name, "outer");
        assert_eq!(report.roots[0].children[0].name, "inner");
        assert_eq!(report.counter("row_hits"), Some(5));
        assert_eq!(report.gauge("frontier_nodes"), Some(&[4][..]));
        // Exactness on real (monotone) clock readings.
        assert_eq!(report.self_sum_ns(), report.total_ns());
    }

    #[test]
    fn report_attributes_self_and_child_time_exactly() {
        // root [0,100]: child a [10,30], child b [40,90] → self 30.
        let events = vec![
            enter(0, "root", 0),
            enter(1, "a", 10),
            exit(2, "a", 30),
            enter(3, "b", 40),
            exit(4, "b", 90),
            exit(5, "root", 100),
        ];
        let r = ProfileReport::from_events(&events).unwrap();
        assert_eq!(r.roots[0].total_ns, 100);
        assert_eq!(r.roots[0].self_ns, 30);
        assert_eq!(r.roots[0].children[0].self_ns, 20);
        assert_eq!(r.roots[0].children[1].self_ns, 50);
        assert_eq!(r.self_sum_ns(), 100);
    }

    #[test]
    fn aggregation_merges_same_name_siblings() {
        let events = vec![
            enter(0, "root", 0),
            enter(1, "depth", 0),
            exit(2, "depth", 10),
            enter(3, "depth", 10),
            exit(4, "depth", 40),
            exit(5, "root", 50),
        ];
        let r = ProfileReport::from_events(&events).unwrap();
        let agg = r.aggregated_paths();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[1].path, "root;depth");
        assert_eq!(agg[1].count, 2);
        assert_eq!(agg[1].total_ns, 40);
        let folded = r.to_folded();
        let parsed = parse_folded(&folded).unwrap();
        let sum: u64 = parsed.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, r.total_ns());
    }

    #[test]
    fn misnested_and_unbalanced_spans_are_rejected() {
        let misnested = vec![enter(0, "a", 0), enter(1, "b", 1), exit(2, "a", 2)];
        assert!(ProfileReport::from_events(&misnested)
            .unwrap_err()
            .contains("misnested"));
        let unbalanced = vec![enter(0, "a", 0)];
        assert!(ProfileReport::from_events(&unbalanced)
            .unwrap_err()
            .contains("never exited"));
        let orphan_exit = vec![exit(0, "a", 5)];
        assert!(ProfileReport::from_events(&orphan_exit)
            .unwrap_err()
            .contains("without a matching enter"));
    }

    #[test]
    fn export_jsonl_round_trips_through_the_codec() {
        let mut p = Probe::enabled();
        p.set_sim_time(7);
        p.enter("walk");
        p.gauge("arena_bytes", 1024);
        p.add("orbit_folds", 9);
        p.exit("walk");
        let jsonl = p.export_jsonl();
        let parsed = crate::codec::read_trace(&jsonl).unwrap();
        assert_eq!(
            parsed.header.as_ref().map(|h| h.version),
            Some(crate::codec::FORMAT_VERSION)
        );
        assert_eq!(parsed.events.len(), 4);
        assert!(parsed.events.iter().all(|e| e.time == 7));
        let r = ProfileReport::from_events(&parsed.events).unwrap();
        assert_eq!(r.counter("orbit_folds"), Some(9));
        assert_eq!(r.gauge("arena_bytes"), Some(&[1024][..]));
        assert_eq!(r.roots[0].begin_sim, 7);
    }

    /// Strategy: a random balanced span program. Commands walk a
    /// virtual clock forward and push/pop spans from a small name
    /// alphabet; whatever is left open at the end is closed in LIFO
    /// order, so the event stream is always well formed.
    fn span_program() -> impl Strategy<Value = Vec<Event>> {
        // Each command is (op, name index, clock advance): op 0 enters
        // a span, 1 exits the innermost, anything else just idles.
        let cmd = (0u8..3, 0usize..4, 0u64..1000);
        collection::vec(cmd, 0..64).prop_map(|cmds| {
            const NAMES: [&str; 4] = ["walk", "depth", "expand", "intern"];
            let mut clock = 0u64;
            let mut seq = 0u64;
            let mut open: Vec<&str> = Vec::new();
            let mut events = Vec::new();
            for (op, n, dt) in cmds {
                clock += dt;
                match op {
                    0 if open.len() < 8 => {
                        open.push(NAMES[n]);
                        events.push(enter(seq, NAMES[n], clock));
                        seq += 1;
                    }
                    1 => {
                        if let Some(name) = open.pop() {
                            events.push(exit(seq, name, clock));
                            seq += 1;
                        }
                    }
                    _ => {}
                }
            }
            while let Some(name) = open.pop() {
                clock += 1;
                events.push(exit(seq, name, clock));
                seq += 1;
            }
            events
        })
    }

    proptest! {
        /// The tentpole exactness contract: for ANY well-formed span
        /// stream, the folded-stack export re-parses and its values sum
        /// exactly to the report's root total — no rounding, no drift.
        #[test]
        fn folded_export_reparses_and_self_times_sum_to_root(events in span_program()) {
            let report = ProfileReport::from_events(&events).unwrap();
            prop_assert_eq!(report.self_sum_ns(), report.total_ns());
            let parsed = parse_folded(&report.to_folded()).unwrap();
            let sum: u64 = parsed.iter().map(|(_, v)| v).sum();
            prop_assert_eq!(sum, report.total_ns());
            // Aggregation regroups but never loses time either.
            let agg_self: u64 = report.aggregated_paths().iter().map(|h| h.self_ns).sum();
            prop_assert_eq!(agg_self, report.total_ns());
        }
    }
}
