//! Staleness telemetry: per-replica lag, pairwise frontier divergence,
//! and degradation SLO error budgets.
//!
//! The lattice monitor (PR 4) witnesses *that* a level died; this module
//! makes the replica-level cause observable. A [`StalenessTracker`] is
//! fed periodic [`FrontierView`] snapshots (one per replica, decoupled
//! from the quorum crate's `Frontier` type so `relax-trace` stays
//! dependency-free) and emits [`EventKind::ReplicaLagSampled`] and
//! [`EventKind::FrontierDivergence`] events plus last-value gauges. An
//! [`SloMonitor`] turns "how long have we been degraded" into an error
//! budget: each level gets a budget of ticks it may spend dead, and the
//! first tick past the budget emits a witnessed
//! [`EventKind::SloBudgetExhausted`] event.

use crate::event::{Event, EventKind};
use crate::metrics::Registry;
use std::fmt::Write as _;

/// One site's entry count inside a replica's frontier snapshot, plus the
/// order-insensitive hash of that site's entries (mirrors the quorum
/// crate's `SiteSummary`, re-declared here so the trace crate does not
/// depend on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteCount {
    /// Originating site (replica id namespace of the log entries).
    pub site: u32,
    /// Entries this replica holds from that site.
    pub count: u64,
    /// Order-insensitive hash of those entries.
    pub hash: u64,
}

/// A replica's frontier at sampling time: how many entries it holds from
/// each originating site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierView {
    /// The replica this snapshot describes.
    pub replica: u32,
    /// Per-site entry counts (any order; missing sites count as zero).
    pub sites: Vec<SiteCount>,
}

impl FrontierView {
    fn count_of(&self, site: u32) -> u64 {
        self.sites
            .iter()
            .find(|s| s.site == site)
            .map_or(0, |s| s.count)
    }
}

/// Computes per-replica lag and pairwise divergence from frontier
/// snapshots, remembering when each replica was last caught up so
/// `time_behind` measures sim-ticks of continuous staleness.
#[derive(Debug, Clone)]
pub struct StalenessTracker {
    /// Last sim time each replica matched the merged frontier.
    caught_up: Vec<u64>,
    /// Largest `entries_behind` ever sampled per replica.
    max_lag: Vec<u64>,
    samples: u64,
    /// Most recent per-replica `(replica, entries_behind, time_behind)`,
    /// for deferred gauge flushing.
    last_lag: Vec<(u32, u64, u64)>,
    /// Most recent pairwise `(a, b, entries)` divergences, same purpose.
    last_div: Vec<(u32, u32, u64)>,
    /// Scratch `(site, max count)` buffer reused across samples.
    merged: Vec<(u32, u64)>,
}

impl StalenessTracker {
    /// A tracker for `n_replicas` replicas, all considered caught up at
    /// time zero.
    pub fn new(n_replicas: usize) -> Self {
        StalenessTracker {
            caught_up: vec![0; n_replicas],
            max_lag: vec![0; n_replicas],
            samples: 0,
            last_lag: vec![(0, 0, 0); n_replicas],
            last_div: Vec::new(),
            merged: Vec::new(),
        }
    }

    /// Number of `sample` calls so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Largest `entries_behind` ever sampled for each replica.
    pub fn max_lag(&self) -> &[u64] {
        &self.max_lag
    }

    /// Takes one staleness sample: computes the merged frontier (per-site
    /// max across all views), then per-replica lag and pairwise
    /// divergence. Returns the telemetry events to record (the caller
    /// stamps time and sequence) and sets last-value gauges in `reg`.
    ///
    /// `views[i]` must describe replica `i` (one view per replica, in
    /// replica order).
    pub fn sample(
        &mut self,
        now: u64,
        views: &[FrontierView],
        reg: Option<&mut Registry>,
    ) -> Vec<EventKind> {
        let mut out = Vec::new();
        self.sample_into(now, views, &mut out);
        if let Some(reg) = reg {
            self.flush_gauges(reg);
        }
        out
    }

    /// Allocation-light [`StalenessTracker::sample`]: appends the
    /// telemetry events to `out` (not cleared) and defers all gauge
    /// updates — call [`StalenessTracker::flush_gauges`] when a scrape
    /// actually needs them. This is the hot sampling path: per-sample
    /// cost is a handful of integer loops over reusable buffers, so
    /// high-frequency sampling stays cheap enough for an overhead budget.
    pub fn sample_into(&mut self, now: u64, views: &[FrontierView], out: &mut Vec<EventKind>) {
        assert_eq!(
            views.len(),
            self.caught_up.len(),
            "one FrontierView per replica"
        );
        self.samples += 1;
        // Merged frontier: the union view a perfectly-replicated site
        // would hold — per-site max entry count across all replicas.
        self.merged.clear();
        for v in views {
            for s in &v.sites {
                match self.merged.iter_mut().find(|(site, _)| *site == s.site) {
                    Some((_, max)) => *max = (*max).max(s.count),
                    None => self.merged.push((s.site, s.count)),
                }
            }
        }
        let merged_total: u64 = self.merged.iter().map(|(_, n)| n).sum();

        for (i, v) in views.iter().enumerate() {
            let held: u64 = self.merged.iter().map(|&(site, _)| v.count_of(site)).sum();
            let entries_behind = merged_total - held;
            if entries_behind == 0 {
                self.caught_up[i] = now;
            }
            self.max_lag[i] = self.max_lag[i].max(entries_behind);
            let time_behind = now - self.caught_up[i];
            self.last_lag[i] = (v.replica, entries_behind, time_behind);
            out.push(EventKind::ReplicaLagSampled {
                site: v.replica,
                entries_behind,
                time_behind,
            });
        }
        // Pairwise divergence: entry-count distance, plus one entry per
        // site whose counts agree but whose hashes do not (same length,
        // different contents — invisible to counts alone).
        self.last_div.clear();
        for a in 0..views.len() {
            for b in (a + 1)..views.len() {
                let (va, vb) = (&views[a], &views[b]);
                let mut entries = 0u64;
                for &(site, _) in &self.merged {
                    let (ca, cb) = (va.count_of(site), vb.count_of(site));
                    entries += ca.abs_diff(cb);
                    if ca == cb && ca > 0 {
                        let ha = va.sites.iter().find(|s| s.site == site).map(|s| s.hash);
                        let hb = vb.sites.iter().find(|s| s.site == site).map(|s| s.hash);
                        if ha != hb {
                            entries += 1;
                        }
                    }
                }
                self.last_div.push((va.replica, vb.replica, entries));
                out.push(EventKind::FrontierDivergence {
                    a: va.replica,
                    b: vb.replica,
                    entries,
                });
            }
        }
    }

    /// Writes the most recent sample's lag and divergence readings into
    /// `reg` as last-value gauges (`staleness_lag_entries_r{i}`,
    /// `staleness_lag_ticks_r{i}`, `frontier_divergence_entries_r{a}_r{b}`).
    /// A no-op before the first sample.
    pub fn flush_gauges(&self, reg: &mut Registry) {
        if self.samples == 0 {
            return;
        }
        for &(site, entries, ticks) in &self.last_lag {
            reg.gauge(&format!("staleness_lag_entries_r{site}"))
                .set(entries as i64);
            reg.gauge(&format!("staleness_lag_ticks_r{site}"))
                .set(ticks as i64);
        }
        for &(a, b, entries) in &self.last_div {
            reg.gauge(&format!("frontier_divergence_entries_r{a}_r{b}"))
                .set(entries as i64);
        }
    }
}

/// A witnessed SLO violation: the named level has been dead for `spent`
/// ticks against a budget of `budget`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloViolation {
    /// The relaxation-lattice level whose budget ran out.
    pub level: String,
    /// Ticks the level was allowed to spend dead.
    pub budget: u64,
    /// Ticks actually spent dead when the budget exhausted.
    pub spent: u64,
}

#[derive(Debug, Clone)]
struct SloBudget {
    level: String,
    budget: u64,
    died_at: Option<u64>,
    spent: u64,
    fired: bool,
}

/// Tracks time-above-level-k error budgets: each registered level may
/// spend at most `budget` ticks dead; the first [`SloMonitor::advance`]
/// past the budget emits one [`EventKind::SloBudgetExhausted`].
///
/// Levels die monotonically in this workspace (a `DegradationMonitor`
/// never resurrects a level within a run), so spent time is simply
/// `now - died_at`.
#[derive(Debug, Clone, Default)]
pub struct SloMonitor {
    budgets: Vec<SloBudget>,
}

impl SloMonitor {
    /// An SLO monitor with no budgets registered.
    pub fn new() -> Self {
        SloMonitor::default()
    }

    /// Registers an error budget: `level` may spend `budget_ticks` dead
    /// before the budget exhausts. Builder-style.
    pub fn budget(mut self, level: &str, budget_ticks: u64) -> Self {
        self.budgets.push(SloBudget {
            level: level.to_string(),
            budget: budget_ticks,
            died_at: None,
            spent: 0,
            fired: false,
        });
        self
    }

    /// Marks a level dead as of `now` (idempotent: later calls for the
    /// same level keep the earliest death time). Levels without a
    /// registered budget are ignored.
    pub fn level_died(&mut self, now: u64, level: &str) {
        if let Some(b) = self.budgets.iter_mut().find(|b| b.level == level) {
            if b.died_at.is_none() {
                b.died_at = Some(now);
            }
        }
    }

    /// Advances the clock: accrues spent time for dead levels and
    /// returns one [`EventKind::SloBudgetExhausted`] for each budget that
    /// crossed its limit since the last call (each fires at most once).
    pub fn advance(&mut self, now: u64) -> Vec<EventKind> {
        let mut out = Vec::new();
        for b in &mut self.budgets {
            let Some(died_at) = b.died_at else { continue };
            b.spent = now.saturating_sub(died_at);
            if !b.fired && b.spent >= b.budget {
                b.fired = true;
                out.push(EventKind::SloBudgetExhausted(Box::new(SloViolation {
                    level: b.level.clone(),
                    budget: b.budget,
                    spent: b.spent,
                })));
            }
        }
        out
    }

    /// Ticks the named level has spent dead; `None` when no budget is
    /// registered for it.
    pub fn spent(&self, level: &str) -> Option<u64> {
        self.budgets
            .iter()
            .find(|b| b.level == level)
            .map(|b| b.spent)
    }

    /// Whether the named level's budget has exhausted.
    pub fn exhausted(&self, level: &str) -> bool {
        self.budgets
            .iter()
            .find(|b| b.level == level)
            .is_some_and(|b| b.fired)
    }
}

/// Renders a staleness timeline from a recorded trace: lag samples,
/// divergence probes, level deaths, and budget exhaustions in time
/// order, followed by a per-replica max-lag summary.
pub fn staleness_report(events: &[Event]) -> String {
    let mut out = String::new();
    let mut max_lag: Vec<(u32, u64)> = Vec::new();
    let mut lines = 0usize;
    for e in events {
        match &e.kind {
            EventKind::ReplicaLagSampled {
                site,
                entries_behind,
                time_behind,
            } => {
                let _ = writeln!(
                    out,
                    "  t={:<6} replica {site} lag: {entries_behind} entries, {time_behind} ticks behind",
                    e.time
                );
                match max_lag.iter_mut().find(|(s, _)| s == site) {
                    Some((_, m)) => *m = (*m).max(*entries_behind),
                    None => max_lag.push((*site, *entries_behind)),
                }
                lines += 1;
            }
            EventKind::FrontierDivergence { a, b, entries } => {
                let _ = writeln!(
                    out,
                    "  t={:<6} divergence r{a}<->r{b}: {entries} entries",
                    e.time
                );
                lines += 1;
            }
            EventKind::LevelTransition(t) => {
                let _ = writeln!(
                    out,
                    "  t={:<6} level(s) {} died (witness: {})",
                    e.time,
                    t.left.join(", "),
                    t.witness
                );
                lines += 1;
            }
            EventKind::SloBudgetExhausted(v) => {
                let _ = writeln!(
                    out,
                    "  t={:<6} SLO BUDGET EXHAUSTED for {}: spent {}/{} ticks dead",
                    e.time, v.level, v.spent, v.budget
                );
                lines += 1;
            }
            _ => {}
        }
    }
    if lines == 0 {
        return "no staleness telemetry in trace (run with staleness sampling enabled)\n"
            .to_string();
    }
    let mut report = String::from("staleness timeline:\n");
    report.push_str(&out);
    max_lag.sort_unstable();
    report.push_str("max lag per replica:");
    for (site, m) in &max_lag {
        let _ = write!(report, " r{site}={m}");
    }
    report.push('\n');
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(replica: u32, sites: &[(u32, u64, u64)]) -> FrontierView {
        FrontierView {
            replica,
            sites: sites
                .iter()
                .map(|&(site, count, hash)| SiteCount { site, count, hash })
                .collect(),
        }
    }

    #[test]
    fn lag_measures_entries_and_time_behind_the_merged_frontier() {
        let mut t = StalenessTracker::new(2);
        // Replica 1 is two entries behind from t=10 onward.
        let ahead = view(0, &[(0, 3, 7), (1, 1, 8)]);
        let behind = view(1, &[(0, 1, 5), (1, 1, 8)]);
        let evs = t.sample(10, &[ahead.clone(), behind.clone()], None);
        assert!(evs.contains(&EventKind::ReplicaLagSampled {
            site: 0,
            entries_behind: 0,
            time_behind: 0,
        }));
        assert!(evs.contains(&EventKind::ReplicaLagSampled {
            site: 1,
            entries_behind: 2,
            time_behind: 10,
        }));
        // Still behind 30 ticks later: time_behind grows, entries stay.
        let evs = t.sample(40, &[ahead.clone(), behind], None);
        assert!(evs.contains(&EventKind::ReplicaLagSampled {
            site: 1,
            entries_behind: 2,
            time_behind: 40,
        }));
        // Caught up: lag resets, and time_behind restarts from here.
        let caught = view(1, &[(0, 3, 7), (1, 1, 8)]);
        let evs = t.sample(50, &[ahead, caught], None);
        assert!(evs.contains(&EventKind::ReplicaLagSampled {
            site: 1,
            entries_behind: 0,
            time_behind: 0,
        }));
        assert_eq!(t.max_lag(), &[0, 2]);
        assert_eq!(t.samples(), 3);
    }

    #[test]
    fn divergence_counts_entry_distance_and_hash_mismatches() {
        let mut t = StalenessTracker::new(2);
        // Same counts on site 0 but different hashes (+1), two entries
        // apart on site 1 (+2).
        let a = view(0, &[(0, 2, 111), (1, 4, 9)]);
        let b = view(1, &[(0, 2, 222), (1, 2, 3)]);
        let evs = t.sample(5, &[a, b], None);
        assert!(evs.contains(&EventKind::FrontierDivergence {
            a: 0,
            b: 1,
            entries: 3,
        }));
    }

    #[test]
    fn sample_sets_gauges_when_given_a_registry() {
        let mut t = StalenessTracker::new(2);
        let mut reg = Registry::new();
        let a = view(0, &[(0, 3, 1)]);
        let b = view(1, &[(0, 1, 1)]);
        t.sample(20, &[a, b], Some(&mut reg));
        assert_eq!(
            reg.get_gauge("staleness_lag_entries_r1").unwrap().value(),
            2
        );
        assert_eq!(reg.get_gauge("staleness_lag_ticks_r1").unwrap().value(), 20);
        assert_eq!(
            reg.get_gauge("frontier_divergence_entries_r0_r1")
                .unwrap()
                .value(),
            2
        );
    }

    #[test]
    fn slo_budget_fires_once_at_exhaustion() {
        let mut slo = SloMonitor::new().budget("PQ", 50).budget("MPQ", 500);
        assert!(slo.advance(10).is_empty(), "nothing dead yet");
        slo.level_died(30, "PQ");
        slo.level_died(40, "PQ"); // idempotent: earliest death wins
        assert!(slo.advance(60).is_empty(), "spent 30 < budget 50");
        let fired = slo.advance(90);
        assert_eq!(fired.len(), 1);
        assert_eq!(
            fired[0],
            EventKind::SloBudgetExhausted(Box::new(SloViolation {
                level: "PQ".into(),
                budget: 50,
                spent: 60,
            }))
        );
        assert!(slo.exhausted("PQ"));
        assert!(!slo.exhausted("MPQ"));
        assert_eq!(slo.spent("PQ"), Some(60));
        assert!(slo.advance(1000).is_empty(), "fires at most once");
        assert_eq!(slo.spent("MPQ"), Some(0));
    }

    #[test]
    fn unbudgeted_levels_are_ignored() {
        let mut slo = SloMonitor::new().budget("PQ", 10);
        slo.level_died(0, "OPQ");
        assert!(slo.advance(100).is_empty());
        assert_eq!(slo.spent("OPQ"), None);
    }

    #[test]
    fn report_renders_a_timeline_and_max_lag_summary() {
        let events = vec![
            Event {
                time: 30,
                seq: 0,
                kind: EventKind::ReplicaLagSampled {
                    site: 1,
                    entries_behind: 2,
                    time_behind: 10,
                },
            },
            Event {
                time: 30,
                seq: 1,
                kind: EventKind::FrontierDivergence {
                    a: 0,
                    b: 1,
                    entries: 2,
                },
            },
            Event {
                time: 90,
                seq: 2,
                kind: EventKind::SloBudgetExhausted(Box::new(SloViolation {
                    level: "PQ".into(),
                    budget: 50,
                    spent: 60,
                })),
            },
        ];
        let r = staleness_report(&events);
        assert!(
            r.contains("replica 1 lag: 2 entries, 10 ticks behind"),
            "{r}"
        );
        assert!(r.contains("divergence r0<->r1: 2 entries"), "{r}");
        assert!(
            r.contains("SLO BUDGET EXHAUSTED for PQ: spent 60/50"),
            "{r}"
        );
        assert!(r.contains("max lag per replica: r1=2"), "{r}");
    }

    #[test]
    fn empty_trace_reports_no_telemetry() {
        assert!(staleness_report(&[]).contains("no staleness telemetry"));
    }
}
