//! JSONL round-trip: re-ingesting exported traces.
//!
//! The write half lives on [`Event::to_json`](crate::event::Event::to_json)
//! and [`Tracer::export_jsonl`](crate::tracer::Tracer::export_jsonl); this
//! module is the read half. An exported trace is a [`TraceHeader`] line
//! (`{"kind":"trace_header","version":2,…}`) followed by one flat JSON
//! object per event. [`read_trace`] parses either form — headered exports
//! or bare event streams (version-1 traces predate the header) — back
//! into typed [`Event`]s, so any trace a binary wrote can be analyzed by
//! `trace_analyze`, the causality layer, or tests.
//!
//! The parser is a small hand-rolled JSON reader covering exactly the
//! shapes the schema emits (flat objects; arrays only under `groups` and
//! `left`; `null` only under `now`): the workspace builds offline with no
//! external dependencies.

use crate::event::{DropCause, Event, EventKind, OpLabel, OpOutcome, PartitionGroups, QuorumPhase};
use crate::monitor::LevelTransition;
use crate::staleness::SloViolation;

/// The trace format version this crate writes and the newest it reads.
/// Older versions stay readable: version 2 added the gray-failure /
/// asymmetric-partition / duplication fault events and the staleness
/// telemetry events; version 3 added the profiling events
/// (`profile_span_enter`/`exit`, `profile_counter`, `profile_gauge`).
/// Both are strict additions to the version-1 schema.
pub const FORMAT_VERSION: u32 = 3;

/// The first line of an exported trace: format version plus collection
/// counters, so a reader knows whether the window is complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version (see [`FORMAT_VERSION`]).
    pub version: u32,
    /// Number of event lines that follow.
    pub events: u64,
    /// Events the bounded ring buffer evicted before export; nonzero
    /// means the trace is a suffix window, not the full run.
    pub dropped_oldest: u64,
}

impl TraceHeader {
    /// Renders the header as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"trace_header\",\"version\":{},\"events\":{},\"dropped_oldest\":{}}}",
            self.version, self.events, self.dropped_oldest
        )
    }
}

/// A re-ingested trace: the header (if the stream had one) and the events.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTrace {
    /// The header line, when present.
    pub header: Option<TraceHeader>,
    /// The events, in stream order.
    pub events: Vec<Event>,
}

/// Why a trace line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

// ---------------------------------------------------------------------------
// Minimal JSON reader (only the shapes the schema emits)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum JVal {
    Int(u64),
    /// A negative integer, parsed exactly (gauge samples are `i64`).
    Neg(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
    Arr(Vec<JVal>),
    /// A nested object (only under report arrays like `campaigns`).
    Obj(Vec<(String, JVal)>),
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(s: &'a str) -> Self {
        Reader {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn fail<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t'))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(&format!("expected '{}'", b as char))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// Parses one `{"key":value,…}` object into key/value pairs.
    fn object(&mut self) -> Result<Vec<(String, JVal)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return self.fail("expected ',' or '}'"),
            }
        }
    }

    fn value(&mut self) -> Result<JVal, String> {
        match self.peek() {
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object().map(JVal::Obj),
            Some(b'n') => self.keyword("null", JVal::Null),
            Some(b't') => self.keyword("true", JVal::Bool(true)),
            Some(b'f') => self.keyword("false", JVal::Bool(false)),
            Some(b'0'..=b'9' | b'-') => self.number(),
            _ => self.fail("expected a JSON value"),
        }
    }

    fn keyword(&mut self, word: &str, val: JVal) -> Result<JVal, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(val)
        } else {
            self.fail(&format!("expected '{word}'"))
        }
    }

    fn array(&mut self) -> Result<JVal, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JVal::Arr(items));
                }
                _ => return self.fail("expected ',' or ']'"),
            }
        }
    }

    fn number(&mut self) -> Result<JVal, String> {
        let start = self.pos;
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_string())?;
        if float {
            text.parse::<f64>()
                .map(JVal::Float)
                .map_err(|e| format!("bad float {text:?}: {e}"))
        } else if text.starts_with('-') {
            // Negative integers parse exactly too (i64 gauge samples).
            text.parse::<i64>()
                .map(JVal::Neg)
                .map_err(|e| format!("bad integer {text:?}: {e}"))
        } else {
            // Integers parse exactly (f64 would lose precision past 2^53).
            text.parse::<u64>()
                .map(JVal::Int)
                .map_err(|e| format!("bad integer {text:?}: {e}"))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.fail("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| "non-UTF-8 \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return self.fail("unknown escape"),
                    }
                    self.pos += 1;
                }
                Some(&b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: take the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-UTF-8 string".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Field access helpers
// ---------------------------------------------------------------------------

struct Fields(Vec<(String, JVal)>);

impl Fields {
    fn get(&self, key: &str) -> Result<&JVal, String> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            JVal::Int(n) => Ok(*n),
            other => Err(format!("field {key:?}: expected integer, got {other:?}")),
        }
    }

    fn u32(&self, key: &str) -> Result<u32, String> {
        u32::try_from(self.u64(key)?).map_err(|_| format!("field {key:?} overflows u32"))
    }

    fn i64(&self, key: &str) -> Result<i64, String> {
        match self.get(key)? {
            JVal::Int(n) => i64::try_from(*n).map_err(|_| format!("field {key:?} overflows i64")),
            JVal::Neg(n) => Ok(*n),
            other => Err(format!("field {key:?}: expected integer, got {other:?}")),
        }
    }

    fn f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            JVal::Float(x) => Ok(*x),
            JVal::Int(n) => Ok(*n as f64),
            JVal::Neg(n) => Ok(*n as f64),
            other => Err(format!("field {key:?}: expected number, got {other:?}")),
        }
    }

    fn str(&self, key: &str) -> Result<&str, String> {
        match self.get(key)? {
            JVal::Str(s) => Ok(s),
            other => Err(format!("field {key:?}: expected string, got {other:?}")),
        }
    }
}

fn parse_drop_cause(s: &str) -> Result<DropCause, String> {
    match s {
        "source_down" => Ok(DropCause::SourceDown),
        "dest_down" => Ok(DropCause::DestDown),
        "partitioned" => Ok(DropCause::Partitioned),
        "loss" => Ok(DropCause::Loss),
        "link_blocked" => Ok(DropCause::LinkBlocked),
        other => Err(format!("unknown drop cause {other:?}")),
    }
}

fn parse_outcome(s: &str) -> Result<OpOutcome, String> {
    match s {
        "completed" => Ok(OpOutcome::Completed),
        "refused" => Ok(OpOutcome::Refused),
        "timed_out" => Ok(OpOutcome::TimedOut),
        other => Err(format!("unknown outcome {other:?}")),
    }
}

fn parse_phase(s: &str) -> Result<QuorumPhase, String> {
    match s {
        "read" => Ok(QuorumPhase::Read),
        "write" => Ok(QuorumPhase::Write),
        other => Err(format!("unknown quorum phase {other:?}")),
    }
}

fn parse_kind(tag: &str, f: &Fields) -> Result<EventKind, String> {
    Ok(match tag {
        "message_sent" => EventKind::MessageSent {
            src: f.u32("src")?,
            dst: f.u32("dst")?,
            deliver_at: f.u64("deliver_at")?,
            msg_id: f.u32("msg_id")?,
        },
        "message_injected" => EventKind::MessageInjected {
            dst: f.u32("dst")?,
            deliver_at: f.u64("deliver_at")?,
            msg_id: f.u32("msg_id")?,
        },
        "message_delivered" => EventKind::MessageDelivered {
            node: f.u32("node")?,
            msg_id: f.u32("msg_id")?,
        },
        "message_dropped" => EventKind::MessageDropped {
            src: f.u32("src")?,
            dst: f.u32("dst")?,
            cause: parse_drop_cause(f.str("cause")?)?,
            msg_id: f.u32("msg_id")?,
        },
        "timer_set" => EventKind::TimerSet {
            node: f.u32("node")?,
            token: f.u64("token")?,
            fire_at: f.u64("fire_at")?,
        },
        "timer_fired" => EventKind::TimerFired {
            node: f.u32("node")?,
            token: f.u64("token")?,
        },
        "node_crashed" => EventKind::NodeCrashed {
            node: f.u32("node")?,
        },
        "node_recovered" => EventKind::NodeRecovered {
            node: f.u32("node")?,
        },
        "partition_set" => {
            let JVal::Arr(groups) = f.get("groups")? else {
                return Err("field \"groups\": expected array".into());
            };
            let mut parsed: Vec<Vec<u32>> = Vec::with_capacity(groups.len());
            for g in groups {
                let JVal::Arr(ids) = g else {
                    return Err("partition group: expected array".into());
                };
                let mut out = Vec::with_capacity(ids.len());
                for id in ids {
                    match id {
                        JVal::Int(n) => out.push(
                            u32::try_from(*n).map_err(|_| "node id overflows u32".to_string())?,
                        ),
                        other => return Err(format!("node id: expected integer, got {other:?}")),
                    }
                }
                parsed.push(out);
            }
            EventKind::PartitionSet {
                groups: PartitionGroups::new(parsed),
            }
        }
        "partition_healed" => EventKind::PartitionHealed,
        "loss_rate_set" => EventKind::LossRateSet {
            probability: f.f64("probability")?,
        },
        "op_begin" => {
            let mut op = OpLabel::default();
            op.push_str(f.str("op")?);
            EventKind::OpBegin {
                node: f.u32("node")?,
                op_id: f.u32("op_id")?,
                op,
            }
        }
        "op_end" => EventKind::OpEnd {
            node: f.u32("node")?,
            op_id: f.u32("op_id")?,
            outcome: parse_outcome(f.str("outcome")?)?,
            latency: f.u64("latency")?,
        },
        "quorum_assembled" => EventKind::QuorumAssembled {
            node: f.u32("node")?,
            op_id: f.u32("op_id")?,
            phase: parse_phase(f.str("phase")?)?,
            size: f.u32("size")?,
        },
        "quorum_failed" => EventKind::QuorumFailed {
            node: f.u32("node")?,
            op_id: f.u32("op_id")?,
            phase: parse_phase(f.str("phase")?)?,
            responses: f.u32("responses")?,
            needed: f.u32("needed")?,
        },
        "view_merged" => EventKind::ViewMerged {
            node: f.u32("node")?,
            op_id: f.u32("op_id")?,
            merged_len: f.u32("merged_len")?,
        },
        "level_transition" => {
            let JVal::Arr(left) = f.get("left")? else {
                return Err("field \"left\": expected array".into());
            };
            let mut names = Vec::with_capacity(left.len());
            for l in left {
                match l {
                    JVal::Str(s) => names.push(s.clone()),
                    other => return Err(format!("level name: expected string, got {other:?}")),
                }
            }
            let now = match f.get("now")? {
                JVal::Str(s) => Some(s.clone()),
                JVal::Null => None,
                other => {
                    return Err(format!(
                        "field \"now\": expected string|null, got {other:?}"
                    ))
                }
            };
            EventKind::LevelTransition(Box::new(LevelTransition {
                left: names,
                now,
                witness: f.str("witness")?.to_string(),
                op_index: usize::try_from(f.u64("op_index")?)
                    .map_err(|_| "op_index overflows usize".to_string())?,
            }))
        }
        "gray_degraded" => EventKind::GrayDegraded {
            node: f.u32("node")?,
            multiplier: f.u32("multiplier")?,
        },
        "gray_restored" => EventKind::GrayRestored {
            node: f.u32("node")?,
        },
        "link_blocked" => EventKind::LinkBlocked {
            src: f.u32("src")?,
            dst: f.u32("dst")?,
        },
        "link_restored" => EventKind::LinkRestored {
            src: f.u32("src")?,
            dst: f.u32("dst")?,
        },
        "duplication_rate_set" => EventKind::DuplicationRateSet {
            probability: f.f64("probability")?,
        },
        "message_duplicated" => EventKind::MessageDuplicated {
            src: f.u32("src")?,
            dst: f.u32("dst")?,
            msg_id: f.u32("msg_id")?,
            orig_msg_id: f.u32("orig_msg_id")?,
        },
        "replica_lag_sampled" => EventKind::ReplicaLagSampled {
            site: f.u32("site")?,
            entries_behind: f.u64("entries_behind")?,
            time_behind: f.u64("time_behind")?,
        },
        "frontier_divergence" => EventKind::FrontierDivergence {
            a: f.u32("a")?,
            b: f.u32("b")?,
            entries: f.u64("entries")?,
        },
        "slo_budget_exhausted" => EventKind::SloBudgetExhausted(Box::new(SloViolation {
            level: f.str("level")?.to_string(),
            budget: f.u64("budget")?,
            spent: f.u64("spent")?,
        })),
        "profile_span_enter" => EventKind::ProfileSpanEnter {
            name: parse_label(f.str("name")?),
            wall_ns: f.u64("wall_ns")?,
        },
        "profile_span_exit" => EventKind::ProfileSpanExit {
            name: parse_label(f.str("name")?),
            wall_ns: f.u64("wall_ns")?,
        },
        "profile_counter" => EventKind::ProfileCounter {
            name: parse_label(f.str("name")?),
            total: f.u64("total")?,
        },
        "profile_gauge" => EventKind::ProfileGauge {
            name: parse_label(f.str("name")?),
            value: f.i64("value")?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    })
}

fn parse_label(s: &str) -> OpLabel {
    let mut label = OpLabel::default();
    label.push_str(s);
    label
}

/// Parses one event line (as produced by
/// [`Event::to_json`](crate::event::Event::to_json)).
pub fn parse_event(line: &str) -> Result<Event, String> {
    let fields = Fields(Reader::new(line).object()?);
    let kind = parse_kind(fields.str("kind")?, &fields)?;
    Ok(Event {
        time: fields.u64("t")?,
        seq: fields.u64("seq")?,
        kind,
    })
}

/// Parses a header line; `Ok(None)` when the line is not a header.
fn parse_header(line: &str) -> Result<Option<TraceHeader>, String> {
    let fields = Fields(Reader::new(line).object()?);
    if fields.str("kind")? != "trace_header" {
        return Ok(None);
    }
    Ok(Some(TraceHeader {
        version: fields.u32("version")?,
        events: fields.u64("events")?,
        dropped_oldest: fields.u64("dropped_oldest")?,
    }))
}

/// Re-ingests an exported JSONL trace: an optional [`TraceHeader`] first
/// line followed by one event per line. Blank lines are skipped. Fails
/// on malformed lines and on headers from a future format version.
pub fn read_trace(input: &str) -> Result<ParsedTrace, TraceParseError> {
    let mut header = None;
    let mut events = Vec::new();
    for (ix, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| TraceParseError {
            line: ix + 1,
            message,
        };
        // Only line 1 may be a header; a headerless stream (pre-header
        // export) falls through to event parsing.
        if ix == 0 {
            if let Some(h) = parse_header(line).map_err(err)? {
                if h.version > FORMAT_VERSION {
                    return Err(TraceParseError {
                        line: ix + 1,
                        message: format!(
                            "trace format version {} is newer than supported ({})",
                            h.version, FORMAT_VERSION
                        ),
                    });
                }
                header = Some(h);
                continue;
            }
        }
        events.push(parse_event(line).map_err(err)?);
    }
    Ok(ParsedTrace { header, events })
}

// ---------------------------------------------------------------------------
// Flat report documents (BENCH_*.json gate files)
// ---------------------------------------------------------------------------

/// A top-level field of a flat JSON report document, as surfaced by
/// [`report_fields`]. Gate metrics are numbers and booleans; nested
/// arrays/objects (per-row detail) are marked but not traversed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportValue {
    /// A numeric field (integers are widened to `f64`).
    Number(f64),
    /// A boolean field (e.g. `within_target`).
    Bool(bool),
    /// A string field (e.g. `bench`, `workload`).
    Text(String),
    /// An array or object field, present but not flattened.
    Nested,
}

/// Parses one flat JSON document — the shape every `BENCH_*.json` gate
/// file uses — into its top-level fields, in document order. The
/// regression checker (`bench_regress`) diffs these against committed
/// baselines; reusing the trace codec's reader keeps the workspace
/// dependency-free.
pub fn report_fields(input: &str) -> Result<Vec<(String, ReportValue)>, String> {
    let fields = Reader::new(input.trim()).object()?;
    Ok(fields
        .into_iter()
        .map(|(k, v)| {
            let v = match v {
                JVal::Int(n) => ReportValue::Number(n as f64),
                JVal::Neg(n) => ReportValue::Number(n as f64),
                JVal::Float(x) => ReportValue::Number(x),
                JVal::Bool(b) => ReportValue::Bool(b),
                JVal::Str(s) => ReportValue::Text(s),
                JVal::Null | JVal::Arr(_) | JVal::Obj(_) => ReportValue::Nested,
            };
            (k, v)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(e: Event) {
        let json = e.to_json();
        let back = parse_event(&json).unwrap_or_else(|err| panic!("{json}: {err}"));
        assert_eq!(back, e, "round-trip of {json}");
    }

    #[test]
    fn every_event_kind_round_trips() {
        let mut op = OpLabel::default();
        op.push_str("Enq(5)");
        let kinds = vec![
            EventKind::MessageSent {
                src: 0,
                dst: 3,
                deliver_at: 55,
                msg_id: 9,
            },
            EventKind::MessageInjected {
                dst: 1,
                deliver_at: 2,
                msg_id: 3,
            },
            EventKind::MessageDelivered { node: 2, msg_id: 9 },
            EventKind::MessageDropped {
                src: 1,
                dst: 0,
                cause: DropCause::Partitioned,
                msg_id: 10,
            },
            EventKind::TimerSet {
                node: 4,
                token: 17,
                fire_at: 300,
            },
            EventKind::TimerFired { node: 4, token: 17 },
            EventKind::NodeCrashed { node: 1 },
            EventKind::NodeRecovered { node: 1 },
            EventKind::PartitionSet {
                groups: PartitionGroups::new(vec![vec![3, 0], vec![1, 2]]),
            },
            EventKind::PartitionHealed,
            EventKind::LossRateSet { probability: 0.25 },
            EventKind::OpBegin {
                node: 3,
                op_id: 2,
                op,
            },
            EventKind::OpEnd {
                node: 3,
                op_id: 2,
                outcome: OpOutcome::TimedOut,
                latency: 200,
            },
            EventKind::QuorumAssembled {
                node: 3,
                op_id: 2,
                phase: QuorumPhase::Read,
                size: 2,
            },
            EventKind::QuorumFailed {
                node: 3,
                op_id: 2,
                phase: QuorumPhase::Write,
                responses: 1,
                needed: 3,
            },
            EventKind::ViewMerged {
                node: 3,
                op_id: 2,
                merged_len: 7,
            },
            EventKind::LevelTransition(Box::new(LevelTransition {
                left: vec!["PQ".into(), "OPQ".into()],
                now: Some("MPQ".into()),
                witness: "Deq(5)".into(),
                op_index: 2,
            })),
            EventKind::GrayDegraded {
                node: 2,
                multiplier: 10,
            },
            EventKind::GrayRestored { node: 2 },
            EventKind::LinkBlocked { src: 9, dst: 0 },
            EventKind::LinkRestored { src: 9, dst: 0 },
            EventKind::DuplicationRateSet { probability: 0.5 },
            EventKind::MessageDuplicated {
                src: 9,
                dst: 1,
                msg_id: 12,
                orig_msg_id: 11,
            },
            EventKind::ReplicaLagSampled {
                site: 1,
                entries_behind: 4,
                time_behind: 120,
            },
            EventKind::FrontierDivergence {
                a: 0,
                b: 2,
                entries: 3,
            },
            EventKind::SloBudgetExhausted(Box::new(crate::staleness::SloViolation {
                level: "PQ".into(),
                budget: 50,
                spent: 61,
            })),
            EventKind::ProfileSpanEnter {
                name: parse_label("multiwalk"),
                wall_ns: 12_345,
            },
            EventKind::ProfileSpanExit {
                name: parse_label("multiwalk"),
                wall_ns: 99_999,
            },
            EventKind::ProfileCounter {
                name: parse_label("row_hits"),
                total: u64::MAX,
            },
            EventKind::ProfileGauge {
                name: parse_label("frontier_nodes"),
                value: -42,
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            round_trip(Event {
                time: 10 * i as u64,
                seq: i as u64,
                kind,
            });
        }
    }

    #[test]
    fn escaped_witness_round_trips() {
        round_trip(Event {
            time: 1,
            seq: 0,
            kind: EventKind::LevelTransition(Box::new(LevelTransition {
                left: vec!["a\"b\\c".into()],
                now: None,
                witness: "line\nbreak\tand \u{1} ctrl".into(),
                op_index: 0,
            })),
        });
    }

    #[test]
    fn header_round_trips_and_gates_versions() {
        let h = TraceHeader {
            version: FORMAT_VERSION,
            events: 2,
            dropped_oldest: 5,
        };
        let body = format!(
            "{}\n{}\n{}\n",
            h.to_json(),
            Event {
                time: 1,
                seq: 0,
                kind: EventKind::PartitionHealed
            }
            .to_json(),
            Event {
                time: 2,
                seq: 1,
                kind: EventKind::NodeCrashed { node: 0 }
            }
            .to_json(),
        );
        let parsed = read_trace(&body).unwrap();
        assert_eq!(parsed.header, Some(h));
        assert_eq!(parsed.events.len(), 2);

        let future = "{\"kind\":\"trace_header\",\"version\":99,\"events\":0,\"dropped_oldest\":0}";
        let err = read_trace(future).unwrap_err();
        assert!(err.message.contains("newer than supported"), "{err}");
    }

    #[test]
    fn headerless_streams_still_parse() {
        let body = "{\"t\":5,\"seq\":0,\"kind\":\"node_crashed\",\"node\":2}\n";
        let parsed = read_trace(body).unwrap();
        assert_eq!(parsed.header, None);
        assert_eq!(parsed.events[0].kind, EventKind::NodeCrashed { node: 2 },);
    }

    /// Property-style round-trip over randomized events (hand-rolled
    /// SplitMix64 generator — the workspace builds with no external
    /// crates, so this plays the role a proptest dependency would).
    #[test]
    fn randomized_events_round_trip() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for trial in 0..500u64 {
            let a = next();
            let b = next();
            let c = next();
            let kind = match trial % 14 {
                0 => EventKind::GrayDegraded {
                    node: a as u32 % 64,
                    multiplier: 1 + b as u32 % 100,
                },
                1 => EventKind::GrayRestored {
                    node: a as u32 % 64,
                },
                2 => EventKind::LinkBlocked {
                    src: a as u32 % 64,
                    dst: b as u32 % 64,
                },
                3 => EventKind::LinkRestored {
                    src: a as u32 % 64,
                    dst: b as u32 % 64,
                },
                4 => EventKind::DuplicationRateSet {
                    // Dyadic rationals render and re-parse exactly.
                    probability: (a % 1024) as f64 / 1024.0,
                },
                5 => EventKind::MessageDuplicated {
                    src: a as u32 % 64,
                    dst: b as u32 % 64,
                    msg_id: c as u32,
                    orig_msg_id: c as u32 ^ 1,
                },
                6 => EventKind::ReplicaLagSampled {
                    site: a as u32 % 64,
                    entries_behind: b >> 8,
                    time_behind: c >> 8,
                },
                7 => EventKind::FrontierDivergence {
                    a: a as u32 % 64,
                    b: b as u32 % 64,
                    entries: c >> 8,
                },
                8 => EventKind::SloBudgetExhausted(Box::new(crate::staleness::SloViolation {
                    level: format!("L{}", a % 7),
                    budget: b >> 8,
                    spent: c >> 8,
                })),
                9 => EventKind::ProfileSpanEnter {
                    name: parse_label(["multiwalk", "depth", "theorem4"][(a % 3) as usize]),
                    wall_ns: b,
                },
                10 => EventKind::ProfileSpanExit {
                    name: parse_label(["multiwalk", "depth", "theorem4"][(a % 3) as usize]),
                    wall_ns: b,
                },
                11 => EventKind::ProfileCounter {
                    name: parse_label("orbit_folds"),
                    total: b,
                },
                12 => EventKind::ProfileGauge {
                    // Signed: negative samples must survive the codec.
                    name: parse_label("frontier_nodes"),
                    value: b as i64,
                },
                _ => EventKind::MessageDropped {
                    src: a as u32 % 64,
                    dst: b as u32 % 64,
                    cause: match c % 5 {
                        0 => DropCause::SourceDown,
                        1 => DropCause::DestDown,
                        2 => DropCause::Partitioned,
                        3 => DropCause::Loss,
                        _ => DropCause::LinkBlocked,
                    },
                    msg_id: c as u32,
                },
            };
            round_trip(Event {
                time: a >> 8,
                seq: trial,
                kind,
            });
        }
    }

    /// A version-2 trace (captured before the version-3 profiling
    /// events) must keep parsing byte-for-byte: version 3 is a strict
    /// superset.
    #[test]
    fn version_2_traces_still_ingest() {
        let v2 = "\
{\"kind\":\"trace_header\",\"version\":2,\"events\":3,\"dropped_oldest\":0}
{\"t\":0,\"seq\":0,\"kind\":\"gray_degraded\",\"node\":2,\"multiplier\":10}
{\"t\":4,\"seq\":1,\"kind\":\"replica_lag_sampled\",\"site\":1,\"entries_behind\":4,\"time_behind\":120}
{\"t\":9,\"seq\":2,\"kind\":\"slo_budget_exhausted\",\"level\":\"PQ\",\"budget\":50,\"spent\":61}
";
        let parsed = read_trace(v2).unwrap();
        assert_eq!(parsed.header.as_ref().unwrap().version, 2);
        assert_eq!(parsed.events.len(), 3);
        assert!(matches!(
            parsed.events[1].kind,
            EventKind::ReplicaLagSampled { site: 1, .. }
        ));
    }

    #[test]
    fn report_fields_surface_gate_metrics() {
        let doc = "{\"bench\":\"profile_overhead\",\"reps\":51,\
                   \"campaigns\":[{\"name\":\"gray\",\"ok\":true}],\
                   \"overhead_pct\":-1.25,\"target_pct\":5.0,\
                   \"within_target\":true}\n";
        let fields = report_fields(doc).unwrap();
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
        assert_eq!(
            get("bench"),
            Some(ReportValue::Text("profile_overhead".into()))
        );
        assert_eq!(get("reps"), Some(ReportValue::Number(51.0)));
        assert_eq!(get("overhead_pct"), Some(ReportValue::Number(-1.25)));
        assert_eq!(get("target_pct"), Some(ReportValue::Number(5.0)));
        assert_eq!(get("within_target"), Some(ReportValue::Bool(true)));
        assert_eq!(get("campaigns"), Some(ReportValue::Nested));
    }

    /// A version-1 trace (captured before the version-2 event additions)
    /// must keep parsing byte-for-byte: later versions are strict
    /// supersets.
    #[test]
    fn version_1_traces_still_ingest() {
        let v1 = "\
{\"kind\":\"trace_header\",\"version\":1,\"events\":4,\"dropped_oldest\":0}
{\"t\":0,\"seq\":0,\"kind\":\"partition_set\",\"groups\":[[9,0],[1,2]]}
{\"t\":5,\"seq\":1,\"kind\":\"message_dropped\",\"src\":9,\"dst\":1,\"cause\":\"partitioned\",\"msg_id\":0}
{\"t\":9,\"seq\":2,\"kind\":\"op_end\",\"node\":9,\"op_id\":1,\"outcome\":\"completed\",\"latency\":9}
{\"t\":9,\"seq\":3,\"kind\":\"level_transition\",\"op_index\":0,\"left\":[\"PQ\"],\"now\":\"MPQ\",\"witness\":\"Deq(5)\"}
";
        let parsed = read_trace(v1).unwrap();
        assert_eq!(parsed.header.as_ref().unwrap().version, 1);
        assert_eq!(parsed.events.len(), 4);
        assert!(matches!(
            parsed.events[1].kind,
            EventKind::MessageDropped {
                cause: DropCause::Partitioned,
                ..
            }
        ));
        // And the analysis stack still consumes it end to end.
        let analysis = crate::analyze::TraceAnalysis::from_trace(parsed);
        assert_eq!(analysis.root_causes().len(), 1);
        assert_eq!(analysis.root_causes()[0].fault_cut, vec![0]);
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let body = "{\"t\":5,\"seq\":0,\"kind\":\"node_crashed\",\"node\":2}\nnot json\n";
        let err = read_trace(body).unwrap_err();
        assert_eq!(err.line, 2);
        let err = read_trace("{\"t\":1,\"seq\":0,\"kind\":\"mystery\"}").unwrap_err();
        assert!(err.message.contains("unknown event kind"), "{err}");
    }
}
