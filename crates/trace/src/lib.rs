//! # relax-trace — structured tracing, metrics, and degradation monitoring
//!
//! Observability for the workspace's simulator and quorum runtime:
//!
//! * [`event`] — typed, sim-time-stamped trace events ([`event::Event`],
//!   [`event::EventKind`]) with a flat JSONL rendering; shared vocabulary
//!   types ([`event::DropCause`], [`event::OpOutcome`],
//!   [`event::QuorumPhase`]) used by the simulator's network and the
//!   quorum client runtime.
//! * [`tracer`] — the bounded ring-buffer collector ([`tracer::Tracer`]);
//!   disabled by default so instrumented hot paths cost one branch when
//!   tracing is off.
//! * [`metrics`] — counters, gauges, exact histograms with
//!   p50/p95/p99 and `merge`, and a named [`metrics::Registry`].
//! * [`monitor`] — the online degradation monitor
//!   ([`monitor::DegradationMonitor`]): per-level language-membership
//!   frontiers over a relaxation lattice (Herlihy & Wing, PODC 1987),
//!   emitting [`monitor::LevelTransition`]s with witness operations the
//!   moment the observed history falls out of a level.
//!
//! ```
//! use relax_trace::prelude::*;
//!
//! let mut tracer = Tracer::bounded(1024);
//! tracer.record(5, EventKind::NodeCrashed { node: 2 });
//! tracer.record(9, EventKind::PartitionHealed);
//! assert_eq!(tracer.to_jsonl().lines().count(), 2);
//!
//! let mut reg = Registry::new();
//! reg.counter("deq").record(true);
//! reg.histogram("latency").record(42);
//! assert!(reg.to_json().contains("\"deq\""));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod metrics;
pub mod monitor;
pub mod tracer;

/// Convenient re-exports of the crate's main types.
pub mod prelude {
    pub use crate::event::{DropCause, Event, EventKind, OpLabel, OpOutcome, QuorumPhase};
    pub use crate::metrics::{Counter, Gauge, Histogram, Registry};
    pub use crate::monitor::{DegradationMonitor, FrontierChecker, LevelTransition};
    pub use crate::tracer::Tracer;
}

pub use event::{DropCause, Event, EventKind, OpLabel, OpOutcome, QuorumPhase};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use monitor::{DegradationMonitor, FrontierChecker, LevelTransition};
pub use tracer::Tracer;
