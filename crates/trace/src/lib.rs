//! # relax-trace — structured tracing, metrics, and degradation monitoring
//!
//! Observability for the workspace's simulator and quorum runtime:
//!
//! * [`event`] — typed, sim-time-stamped trace events ([`event::Event`],
//!   [`event::EventKind`]) with a flat JSONL rendering; shared vocabulary
//!   types ([`event::DropCause`], [`event::OpOutcome`],
//!   [`event::QuorumPhase`]) used by the simulator's network and the
//!   quorum client runtime.
//! * [`tracer`] — the bounded ring-buffer collector ([`tracer::Tracer`]);
//!   disabled by default so instrumented hot paths cost one branch when
//!   tracing is off.
//! * [`metrics`] — counters, gauges, exact histograms with
//!   p50/p95/p99 and `merge`, and a named [`metrics::Registry`].
//! * [`monitor`] — the online degradation monitor
//!   ([`monitor::DegradationMonitor`]): per-level language-membership
//!   frontiers over a relaxation lattice (Herlihy & Wing, PODC 1987),
//!   emitting [`monitor::LevelTransition`]s with witness operations the
//!   moment the observed history falls out of a level.
//! * [`codec`] — the read half of the JSONL format: a versioned
//!   [`codec::TraceHeader`] and [`codec::read_trace`], which re-ingests
//!   any exported trace into typed events.
//! * [`causality`] — the happens-before DAG over a trace
//!   ([`causality::HbGraph`]): program order per node, send→deliver
//!   edges paired by message id, fault-attribution edges; per-operation
//!   [`causality::Span`]s with critical-path latency attribution
//!   ([`causality::LatencyBreakdown`]).
//! * [`analyze`] — degradation root-cause: walk a witnessed
//!   [`monitor::LevelTransition`] backwards through the DAG to the
//!   minimal cut of fault events that caused it, rendered as a
//!   human-readable report ([`analyze::TraceAnalysis`]).
//! * [`profile`] — the engine flight recorder: a recording
//!   [`profile::Probe`] (hierarchical wall+sim-time spans, batched
//!   counters, per-depth gauges) behind the engine's zero-cost
//!   `EngineProbe` seam, and [`profile::ProfileReport`] with exact-sum
//!   self/child attribution, hot-span rankings, and folded-stack
//!   export.
//! * [`staleness`] — replication staleness telemetry: per-replica lag
//!   and pairwise frontier divergence from periodic snapshots
//!   ([`staleness::StalenessTracker`]), plus degradation SLO error
//!   budgets with witnessed exhaustion events
//!   ([`staleness::SloMonitor`]).
//!
//! ```
//! use relax_trace::prelude::*;
//!
//! let mut tracer = Tracer::bounded(1024);
//! tracer.record(5, EventKind::NodeCrashed { node: 2 });
//! tracer.record(9, EventKind::PartitionHealed);
//! assert_eq!(tracer.to_jsonl().lines().count(), 2);
//!
//! let mut reg = Registry::new();
//! reg.counter("deq").record(true);
//! reg.histogram("latency").record(42);
//! assert!(reg.to_json().contains("\"deq\""));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod causality;
pub mod codec;
pub mod event;
pub mod metrics;
pub mod monitor;
pub mod profile;
pub mod staleness;
pub mod tracer;

/// Convenient re-exports of the crate's main types.
pub mod prelude {
    pub use crate::analyze::TraceAnalysis;
    pub use crate::causality::{HbGraph, LatencyBreakdown, Span};
    pub use crate::codec::{read_trace, ParsedTrace, TraceHeader};
    pub use crate::event::{
        DropCause, Event, EventKind, OpLabel, OpOutcome, PartitionGroups, QuorumPhase,
    };
    pub use crate::metrics::{Counter, Gauge, Histogram, Registry, TimeBase};
    pub use crate::monitor::{DegradationMonitor, FrontierChecker, LevelTransition};
    pub use crate::profile::{parse_folded, GaugeSeries, HotSpan, Probe, ProfileReport, SpanNode};
    pub use crate::staleness::{
        staleness_report, FrontierView, SiteCount, SloMonitor, SloViolation, StalenessTracker,
    };
    pub use crate::tracer::Tracer;
}

pub use analyze::TraceAnalysis;
pub use causality::{HbGraph, LatencyBreakdown, Span};
pub use codec::{read_trace, ParsedTrace, TraceHeader};
pub use event::{DropCause, Event, EventKind, OpLabel, OpOutcome, PartitionGroups, QuorumPhase};
pub use metrics::{Counter, Gauge, Histogram, Registry, TimeBase};
pub use monitor::{DegradationMonitor, FrontierChecker, LevelTransition};
pub use profile::{parse_folded, GaugeSeries, HotSpan, Probe, ProfileReport, SpanNode};
pub use staleness::{
    staleness_report, FrontierView, SiteCount, SloMonitor, SloViolation, StalenessTracker,
};
pub use tracer::Tracer;
