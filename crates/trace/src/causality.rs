//! Happens-before reconstruction over a collected trace.
//!
//! A trace is a flat, time-ordered event stream; this module rebuilds
//! the causal structure the simulator executed:
//!
//! * **program order** — events at the same node are totally ordered by
//!   their sequence numbers (each node is a sequential automaton);
//! * **send → deliver** — a `message_delivered` (or in-flight
//!   `message_dropped`) is caused by the `message_sent`/
//!   `message_injected` carrying the same `msg_id`;
//! * **timer set → fire** — paired by `(node, token)`;
//! * **fault attribution** — a `message_dropped` is caused by the fault
//!   that explains it: the latest `partition_set` (cause `partitioned`),
//!   the latest `node_crashed` of the dead endpoint (`source_down`/
//!   `dest_down`), the latest `loss_rate_set` (`loss`, when one was
//!   scheduled), or the latest `link_blocked` on that directed link
//!   (`link_blocked`); a `message_sent` touching a gray-degraded
//!   endpoint is caused by the `gray_degraded` that is slowing it, and a
//!   `message_duplicated` by its original send plus the
//!   `duplication_rate_set` that enabled it;
//! * **witness** — a `level_transition` is caused by the `op_end` of its
//!   witness operation (the monitor observes completed operations in
//!   completion order, so the witness is the `op_index`-th completed
//!   `op_end` of the stream).
//!
//! On top of the DAG, [`HbGraph::spans`] cuts the client timeline into
//! per-operation [`Span`]s and attributes each span's end-to-end latency
//! to phases ([`LatencyBreakdown`]): the client node is sequential, so
//! every instant between `op_begin` and `op_end` is spent waiting for —
//! and is classified by — the next client-side event. The four phase
//! components sum to the span's wall-clock width *exactly*, which
//! integration tests assert against the latency the runtime measured.

use std::collections::HashMap;

use crate::event::{DropCause, Event, EventKind, OpOutcome};
use crate::metrics::Registry;

/// The happens-before DAG over one trace: events are indices into the
/// stream (ascending sequence order), edges point from each event to its
/// immediate causes.
#[derive(Debug, Clone)]
pub struct HbGraph {
    events: Vec<Event>,
    preds: Vec<Vec<usize>>,
    locations: Vec<Option<u32>>,
}

/// The node at which an event occurs, or `None` for ambient environment
/// events (partitions, loss-rate changes, monitor transitions) that
/// belong to no node's program order.
fn location(kind: &EventKind, in_flight_drop: bool) -> Option<u32> {
    match kind {
        EventKind::MessageSent { src, .. } => Some(*src),
        EventKind::MessageInjected { dst, .. } => Some(*dst),
        EventKind::MessageDelivered { node, .. } => Some(*node),
        // An in-flight drop happens at the delivery point; a send-time
        // drop happens at the sender (it never left).
        EventKind::MessageDropped { src, dst, .. } => {
            Some(if in_flight_drop { *dst } else { *src })
        }
        EventKind::TimerSet { node, .. } | EventKind::TimerFired { node, .. } => Some(*node),
        EventKind::NodeCrashed { node } | EventKind::NodeRecovered { node } => Some(*node),
        EventKind::GrayDegraded { node, .. } | EventKind::GrayRestored { node } => Some(*node),
        EventKind::OpBegin { node, .. }
        | EventKind::OpEnd { node, .. }
        | EventKind::QuorumAssembled { node, .. }
        | EventKind::QuorumFailed { node, .. }
        | EventKind::ViewMerged { node, .. } => Some(*node),
        EventKind::PartitionSet { .. }
        | EventKind::PartitionHealed
        | EventKind::LossRateSet { .. }
        | EventKind::LevelTransition(_)
        // Link blocks are properties of the medium, duplication happens
        // inside the network, and telemetry samples observe all nodes:
        // none of these belong to one node's program order.
        | EventKind::LinkBlocked { .. }
        | EventKind::LinkRestored { .. }
        | EventKind::DuplicationRateSet { .. }
        | EventKind::MessageDuplicated { .. }
        | EventKind::ReplicaLagSampled { .. }
        | EventKind::FrontierDivergence { .. }
        | EventKind::SloBudgetExhausted(_)
        // Profiling spans describe the engine/runtime itself, not any
        // simulated node's program order.
        | EventKind::ProfileSpanEnter { .. }
        | EventKind::ProfileSpanExit { .. }
        | EventKind::ProfileCounter { .. }
        | EventKind::ProfileGauge { .. } => None,
    }
}

impl HbGraph {
    /// Reconstructs the DAG from a trace (events must be in sequence
    /// order, as every exporter produces them).
    pub fn build(events: Vec<Event>) -> Self {
        let n = events.len();
        // Sends indexed by message id (ids are world-unique).
        let mut send_of: HashMap<u32, usize> = HashMap::new();
        for (i, e) in events.iter().enumerate() {
            if let EventKind::MessageSent { msg_id, .. }
            | EventKind::MessageInjected { msg_id, .. }
            | EventKind::MessageDuplicated { msg_id, .. } = &e.kind
            {
                send_of.insert(*msg_id, i);
            }
        }
        let locations: Vec<Option<u32>> = events
            .iter()
            .map(|e| {
                let in_flight = match &e.kind {
                    EventKind::MessageDropped { msg_id, .. } => send_of.contains_key(msg_id),
                    _ => false,
                };
                location(&e.kind, in_flight)
            })
            .collect();

        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut last_at: HashMap<u32, usize> = HashMap::new();
        let mut last_crash: HashMap<u32, usize> = HashMap::new();
        let mut last_partition: Option<usize> = None;
        let mut last_loss: Option<usize> = None;
        let mut last_gray: HashMap<u32, usize> = HashMap::new();
        let mut last_link_block: HashMap<(u32, u32), usize> = HashMap::new();
        let mut last_dup: Option<usize> = None;
        let mut timer_set_at: HashMap<(u32, u64), usize> = HashMap::new();
        let mut completed_ends: Vec<usize> = Vec::new();

        for i in 0..n {
            if let Some(loc) = locations[i] {
                if let Some(&p) = last_at.get(&loc) {
                    preds[i].push(p);
                }
                last_at.insert(loc, i);
            }
            match &events[i].kind {
                EventKind::MessageSent { src, dst, .. } => {
                    // A gray-degraded endpoint slows this message: the
                    // degradation is part of why everything downstream of
                    // the send happened when it did.
                    for endpoint in [src, dst] {
                        if let Some(&g) = last_gray.get(endpoint) {
                            preds[i].push(g);
                        }
                    }
                }
                EventKind::MessageDelivered { msg_id, .. } => {
                    if let Some(&s) = send_of.get(msg_id) {
                        preds[i].push(s);
                    }
                }
                EventKind::MessageDropped {
                    src,
                    dst,
                    cause,
                    msg_id,
                } => {
                    if let Some(&s) = send_of.get(msg_id) {
                        preds[i].push(s);
                    }
                    let fault = match cause {
                        DropCause::Partitioned => last_partition,
                        DropCause::SourceDown => last_crash.get(src).copied(),
                        DropCause::DestDown => last_crash.get(dst).copied(),
                        // Background loss may come from the network config
                        // with no scheduled loss_rate_set: then no edge.
                        DropCause::Loss => last_loss,
                        DropCause::LinkBlocked => last_link_block.get(&(*src, *dst)).copied(),
                    };
                    if let Some(f) = fault {
                        preds[i].push(f);
                    }
                }
                EventKind::TimerSet { node, token, .. } => {
                    timer_set_at.insert((*node, *token), i);
                }
                EventKind::TimerFired { node, token } => {
                    if let Some(&s) = timer_set_at.get(&(*node, *token)) {
                        preds[i].push(s);
                    }
                }
                EventKind::NodeCrashed { node } => {
                    last_crash.insert(*node, i);
                }
                EventKind::PartitionSet { .. } => {
                    last_partition = Some(i);
                }
                EventKind::LossRateSet { .. } => {
                    last_loss = Some(i);
                }
                EventKind::GrayDegraded { node, .. } => {
                    last_gray.insert(*node, i);
                }
                EventKind::GrayRestored { node } => {
                    last_gray.remove(node);
                }
                EventKind::LinkBlocked { src, dst } => {
                    last_link_block.insert((*src, *dst), i);
                }
                EventKind::LinkRestored { src, dst } => {
                    last_link_block.remove(&(*src, *dst));
                }
                EventKind::DuplicationRateSet { .. } => {
                    last_dup = Some(i);
                }
                EventKind::MessageDuplicated { orig_msg_id, .. } => {
                    // The copy descends from the original send, and the
                    // duplication fault setting explains why it exists.
                    if let Some(&s) = send_of.get(orig_msg_id) {
                        preds[i].push(s);
                    }
                    if let Some(d) = last_dup {
                        preds[i].push(d);
                    }
                }
                EventKind::OpEnd {
                    outcome: OpOutcome::Completed,
                    ..
                } => {
                    completed_ends.push(i);
                }
                EventKind::LevelTransition(t) => {
                    if let Some(&w) = completed_ends.get(t.op_index) {
                        preds[i].push(w);
                    }
                }
                _ => {}
            }
            preds[i].sort_unstable();
            preds[i].dedup();
        }

        HbGraph {
            events,
            preds,
            locations,
        }
    }

    /// The underlying events, in sequence order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The immediate causes of event `i` (ascending indices).
    pub fn preds(&self, i: usize) -> &[usize] {
        &self.preds[i]
    }

    /// The node event `i` occurs at, if any.
    pub fn location(&self, i: usize) -> Option<u32> {
        self.locations[i]
    }

    /// Every event in the causal past of `i` (excluding `i` itself),
    /// ascending — the backward cone through program order, message, and
    /// fault-attribution edges.
    pub fn causal_past(&self, i: usize) -> Vec<usize> {
        let mut seen = vec![false; self.events.len()];
        let mut stack: Vec<usize> = self.preds[i].to_vec();
        while let Some(j) = stack.pop() {
            if seen[j] {
                continue;
            }
            seen[j] = true;
            stack.extend_from_slice(&self.preds[j]);
        }
        (0..self.events.len()).filter(|&j| seen[j]).collect()
    }

    /// The event index of the `op_index`-th completed `op_end` — the
    /// witness of a [`crate::monitor::LevelTransition`] with that index.
    /// `None` when the trace window no longer holds it.
    pub fn witness_op_end(&self, op_index: usize) -> Option<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                matches!(
                    e.kind,
                    EventKind::OpEnd {
                        outcome: OpOutcome::Completed,
                        ..
                    }
                )
            })
            .nth(op_index)
            .map(|(i, _)| i)
    }

    /// Cuts each client's timeline into per-operation [`Span`]s (in
    /// `op_begin` order) with critical-path latency attribution.
    pub fn spans(&self) -> Vec<Span> {
        // Partitioned drops involving a node, for stall classification.
        let partitioned_drops: Vec<(u64, u32, u32)> = self
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::MessageDropped {
                    src,
                    dst,
                    cause: DropCause::Partitioned,
                    ..
                } => Some((e.time, *src, *dst)),
                _ => None,
            })
            .collect();

        struct Open {
            begin_ix: usize,
            op_id: u32,
            label: String,
            events: Vec<usize>,
        }
        let mut open: HashMap<u32, Open> = HashMap::new();
        let mut spans = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            match &e.kind {
                EventKind::OpBegin { node, op_id, op } => {
                    open.insert(
                        *node,
                        Open {
                            begin_ix: i,
                            op_id: *op_id,
                            label: op.as_str().to_string(),
                            events: vec![i],
                        },
                    );
                }
                EventKind::OpEnd {
                    node,
                    op_id,
                    outcome,
                    latency,
                } => {
                    let Some(o) = open.get_mut(node) else {
                        continue;
                    };
                    if o.op_id != *op_id {
                        continue;
                    }
                    let o = open.remove(node).expect("just found");
                    let begin_time = self.events[o.begin_ix].time;
                    let mut events = o.events;
                    events.push(i);
                    let node_val = *node;
                    let partitioned_before = |t: u64| {
                        partitioned_drops.iter().any(|&(dt, src, dst)| {
                            (src == node_val || dst == node_val) && dt >= begin_time && dt <= t
                        })
                    };
                    let breakdown =
                        self.attribute(&events, begin_time, *outcome, &partitioned_before);
                    spans.push(Span {
                        node: node_val,
                        op_id: *op_id,
                        label: o.label,
                        outcome: *outcome,
                        begin_ix: o.begin_ix,
                        end_ix: i,
                        begin_time,
                        end_time: e.time,
                        latency: *latency,
                        events,
                        breakdown,
                    });
                }
                _ => {
                    if let Some(loc) = self.locations[i] {
                        if let Some(o) = open.get_mut(&loc) {
                            o.events.push(i);
                        }
                    }
                }
            }
        }
        spans.sort_by_key(|s| s.begin_ix);
        spans
    }

    /// Classifies each inter-event gap on the client's timeline by the
    /// event that *ends* it: a gap the client spends waiting for a
    /// delivery or quorum is network wait; a gap ended by the timeout
    /// machinery is a stall (partition stall when a partition provably
    /// dropped this client's traffic in the window, quorum-retry stall
    /// otherwise); everything else is local compute. Gap widths sum to
    /// the span's wall-clock width exactly.
    fn attribute(
        &self,
        span_events: &[usize],
        begin_time: u64,
        outcome: OpOutcome,
        partitioned_before: &dyn Fn(u64) -> bool,
    ) -> LatencyBreakdown {
        let mut b = LatencyBreakdown::default();
        let mut prev = begin_time;
        for &ix in span_events {
            let e = &self.events[ix];
            let delta = e.time.saturating_sub(prev);
            prev = e.time.max(prev);
            if delta == 0 {
                continue;
            }
            match &e.kind {
                EventKind::MessageDelivered { .. } | EventKind::QuorumAssembled { .. } => {
                    b.network_wait += delta;
                }
                EventKind::TimerFired { .. } | EventKind::QuorumFailed { .. } => {
                    if partitioned_before(e.time) {
                        b.partition_stall += delta;
                    } else {
                        b.quorum_retry_stall += delta;
                    }
                }
                EventKind::MessageDropped { cause, .. } => {
                    if matches!(cause, DropCause::Partitioned | DropCause::LinkBlocked) {
                        b.partition_stall += delta;
                    } else {
                        b.quorum_retry_stall += delta;
                    }
                }
                EventKind::OpEnd { .. } => {
                    if matches!(outcome, OpOutcome::TimedOut) {
                        if partitioned_before(e.time) {
                            b.partition_stall += delta;
                        } else {
                            b.quorum_retry_stall += delta;
                        }
                    } else {
                        b.local_compute += delta;
                    }
                }
                _ => {
                    b.local_compute += delta;
                }
            }
        }
        b
    }
}

/// One operation's latency, decomposed along the client's critical path.
/// The four components sum to `end_time - begin_time` exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Time spent waiting for message deliveries and quorum assembly.
    pub network_wait: u64,
    /// Time stalled waiting out the quorum timeout with no partition
    /// implicated (slow or insufficient responses).
    pub quorum_retry_stall: u64,
    /// Time stalled while a partition was dropping this client's traffic.
    pub partition_stall: u64,
    /// Everything else: local evaluation between waits.
    pub local_compute: u64,
}

impl LatencyBreakdown {
    /// Sum of the four components.
    pub fn total(&self) -> u64 {
        self.network_wait + self.quorum_retry_stall + self.partition_stall + self.local_compute
    }
}

/// One operation on one client, as a contiguous slice of the client's
/// timeline: its bracketing events, the events in between, and the
/// latency attribution.
#[derive(Debug, Clone)]
pub struct Span {
    /// The client node that ran the operation.
    pub node: u32,
    /// The client-local operation id (`op_begin`/`op_end` correlation).
    pub op_id: u32,
    /// The operation label (from `op_begin`).
    pub label: String,
    /// How the operation ended.
    pub outcome: OpOutcome,
    /// Index of the `op_begin` event.
    pub begin_ix: usize,
    /// Index of the `op_end` event.
    pub end_ix: usize,
    /// Sim time of `op_begin`.
    pub begin_time: u64,
    /// Sim time of `op_end`.
    pub end_time: u64,
    /// The latency the runtime itself measured (from `op_end`).
    pub latency: u64,
    /// Indices of the client-node events in `[begin_ix, end_ix]`.
    pub events: Vec<usize>,
    /// The critical-path decomposition of `end_time - begin_time`.
    pub breakdown: LatencyBreakdown,
}

impl Span {
    /// Wall-clock width of the span (equals `breakdown.total()`).
    pub fn width(&self) -> u64 {
        self.end_time - self.begin_time
    }
}

/// Aggregates spans into a [`Registry`]: the `ops` counter counts
/// availability (timeouts fail), `op_latency` collects measured
/// end-to-end latencies, and one `phase_*` histogram per
/// [`LatencyBreakdown`] component feeds per-phase p50/p95/p99.
pub fn aggregate_spans(spans: &[Span], registry: &mut Registry) {
    for s in spans {
        registry
            .counter("ops")
            .record(!matches!(s.outcome, OpOutcome::TimedOut));
        registry.histogram("op_latency").record(s.latency);
        registry
            .histogram("phase_network_wait")
            .record(s.breakdown.network_wait);
        registry
            .histogram("phase_quorum_retry_stall")
            .record(s.breakdown.quorum_retry_stall);
        registry
            .histogram("phase_partition_stall")
            .record(s.breakdown.partition_stall);
        registry
            .histogram("phase_local_compute")
            .record(s.breakdown.local_compute);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{OpLabel, QuorumPhase};
    use crate::monitor::LevelTransition;

    fn ev(time: u64, seq: u64, kind: EventKind) -> Event {
        Event { time, seq, kind }
    }

    fn label(s: &str) -> OpLabel {
        let mut l = OpLabel::default();
        l.push_str(s);
        l
    }

    /// A hand-built trace: client 9 runs one op against replica 0;
    /// one request is delivered, one response comes back.
    fn tiny_trace() -> Vec<Event> {
        vec![
            ev(
                0,
                0,
                EventKind::OpBegin {
                    node: 9,
                    op_id: 1,
                    op: label("Deq"),
                },
            ),
            ev(
                0,
                1,
                EventKind::MessageSent {
                    src: 9,
                    dst: 0,
                    deliver_at: 5,
                    msg_id: 0,
                },
            ),
            ev(5, 2, EventKind::MessageDelivered { node: 0, msg_id: 0 }),
            ev(
                5,
                3,
                EventKind::MessageSent {
                    src: 0,
                    dst: 9,
                    deliver_at: 10,
                    msg_id: 1,
                },
            ),
            ev(10, 4, EventKind::MessageDelivered { node: 9, msg_id: 1 }),
            ev(
                10,
                5,
                EventKind::QuorumAssembled {
                    node: 9,
                    op_id: 1,
                    phase: QuorumPhase::Read,
                    size: 1,
                },
            ),
            ev(
                10,
                6,
                EventKind::OpEnd {
                    node: 9,
                    op_id: 1,
                    outcome: OpOutcome::Completed,
                    latency: 10,
                },
            ),
        ]
    }

    #[test]
    fn send_deliver_edges_pair_by_msg_id() {
        let g = HbGraph::build(tiny_trace());
        // Delivery at the replica (ix 2) is caused by the client's send
        // (ix 1); the reply delivery (ix 4) by the replica's send (ix 3).
        assert!(g.preds(2).contains(&1));
        assert!(g.preds(4).contains(&3));
        // Program order chains each node's events.
        assert!(g.preds(1).contains(&0), "client: begin -> send");
        assert!(g.preds(3).contains(&2), "replica: deliver -> send");
    }

    #[test]
    fn causal_past_crosses_nodes() {
        let g = HbGraph::build(tiny_trace());
        let past = g.causal_past(6); // the op_end
                                     // Everything in this trace is in the op's past.
        assert_eq!(past, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn span_breakdown_sums_exactly_and_classifies_waits() {
        let g = HbGraph::build(tiny_trace());
        let spans = g.spans();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.label, "Deq");
        assert_eq!((s.begin_time, s.end_time, s.latency), (0, 10, 10));
        // The whole span is spent waiting for the round trip.
        assert_eq!(s.breakdown.network_wait, 10);
        assert_eq!(s.breakdown.total(), s.width());
        assert_eq!(s.breakdown.total(), s.latency);
    }

    #[test]
    fn partitioned_drop_links_to_latest_partition_and_stalls() {
        let events = vec![
            ev(
                100,
                0,
                EventKind::PartitionSet {
                    groups: crate::event::PartitionGroups::new(vec![vec![9], vec![0]]),
                },
            ),
            ev(
                200,
                1,
                EventKind::OpBegin {
                    node: 9,
                    op_id: 1,
                    op: label("Deq"),
                },
            ),
            ev(
                200,
                2,
                EventKind::TimerSet {
                    node: 9,
                    token: 1,
                    fire_at: 400,
                },
            ),
            // Send-time drop: no message_sent exists for msg_id 7.
            ev(
                200,
                3,
                EventKind::MessageDropped {
                    src: 9,
                    dst: 0,
                    cause: DropCause::Partitioned,
                    msg_id: 7,
                },
            ),
            ev(400, 4, EventKind::TimerFired { node: 9, token: 1 }),
            ev(
                400,
                5,
                EventKind::QuorumFailed {
                    node: 9,
                    op_id: 1,
                    phase: QuorumPhase::Read,
                    responses: 0,
                    needed: 1,
                },
            ),
            ev(
                400,
                6,
                EventKind::OpEnd {
                    node: 9,
                    op_id: 1,
                    outcome: OpOutcome::TimedOut,
                    latency: 200,
                },
            ),
        ];
        let g = HbGraph::build(events);
        // The drop is attributed to the partition.
        assert!(g.preds(3).contains(&0));
        // The timer-fire pairs with its set.
        assert!(g.preds(4).contains(&2));
        let spans = g.spans();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.outcome, OpOutcome::TimedOut);
        // The whole wait is a partition stall, and it sums to the width.
        assert_eq!(s.breakdown.partition_stall, 200);
        assert_eq!(s.breakdown.total(), s.width());
    }

    #[test]
    fn level_transition_links_to_the_indexth_completed_op_end() {
        let op_end = |t: u64, seq: u64, op_id: u32, outcome: OpOutcome| {
            ev(
                t,
                seq,
                EventKind::OpEnd {
                    node: 9,
                    op_id,
                    outcome,
                    latency: 1,
                },
            )
        };
        let events = vec![
            op_end(10, 0, 1, OpOutcome::Completed),
            op_end(20, 1, 2, OpOutcome::TimedOut), // not observed by monitor
            op_end(30, 2, 3, OpOutcome::Completed),
            ev(
                30,
                3,
                EventKind::LevelTransition(Box::new(LevelTransition {
                    op_index: 1,
                    left: vec!["PQ".into()],
                    now: Some("MPQ".into()),
                    witness: "Deq(5)".into(),
                })),
            ),
        ];
        let g = HbGraph::build(events);
        assert_eq!(g.witness_op_end(1), Some(2));
        assert!(g.preds(3).contains(&2), "transition -> witness op_end");
        assert!(!g.preds(3).contains(&1), "timeouts are not witnesses");
    }

    #[test]
    fn gray_degradation_is_an_ancestor_of_sends_it_slows() {
        let events = vec![
            ev(
                10,
                0,
                EventKind::GrayDegraded {
                    node: 0,
                    multiplier: 8,
                },
            ),
            // Client 9 sends to the gray replica 0: edge from the gray event.
            ev(
                20,
                1,
                EventKind::MessageSent {
                    src: 9,
                    dst: 0,
                    deliver_at: 100,
                    msg_id: 0,
                },
            ),
            ev(30, 2, EventKind::GrayRestored { node: 0 }),
            // After restoration: no gray edge.
            ev(
                40,
                3,
                EventKind::MessageSent {
                    src: 9,
                    dst: 0,
                    deliver_at: 45,
                    msg_id: 1,
                },
            ),
            ev(100, 4, EventKind::MessageDelivered { node: 0, msg_id: 0 }),
        ];
        let g = HbGraph::build(events);
        assert!(g.preds(1).contains(&0), "send to gray dst <- gray event");
        assert!(!g.preds(3).contains(&0), "restored: no gray edge");
        // The gray event reaches the delivery through the send.
        assert!(g.causal_past(4).contains(&0));
    }

    #[test]
    fn link_blocked_drop_links_to_the_latest_block_of_that_direction() {
        let events = vec![
            ev(10, 0, EventKind::LinkBlocked { src: 9, dst: 0 }),
            ev(10, 1, EventKind::LinkBlocked { src: 9, dst: 1 }),
            ev(15, 2, EventKind::LinkRestored { src: 9, dst: 1 }),
            // Send-time drop on the still-blocked 9->0 direction.
            ev(
                20,
                3,
                EventKind::MessageDropped {
                    src: 9,
                    dst: 0,
                    cause: DropCause::LinkBlocked,
                    msg_id: 7,
                },
            ),
        ];
        let g = HbGraph::build(events);
        assert!(g.preds(3).contains(&0), "drop <- its direction's block");
        assert!(!g.preds(3).contains(&1), "other direction irrelevant");
    }

    #[test]
    fn duplicated_message_descends_from_original_send_and_dup_setting() {
        let events = vec![
            ev(0, 0, EventKind::DuplicationRateSet { probability: 0.5 }),
            ev(
                10,
                1,
                EventKind::MessageSent {
                    src: 9,
                    dst: 0,
                    deliver_at: 15,
                    msg_id: 0,
                },
            ),
            ev(
                10,
                2,
                EventKind::MessageDuplicated {
                    src: 9,
                    dst: 0,
                    msg_id: 1,
                    orig_msg_id: 0,
                },
            ),
            ev(15, 3, EventKind::MessageDelivered { node: 0, msg_id: 0 }),
            // The copy's delivery pairs with the duplication event.
            ev(15, 4, EventKind::MessageDelivered { node: 0, msg_id: 1 }),
        ];
        let g = HbGraph::build(events);
        assert!(g.preds(2).contains(&1), "copy <- original send");
        assert!(g.preds(2).contains(&0), "copy <- duplication setting");
        assert!(g.preds(4).contains(&2), "copy delivery <- duplication");
        assert!(g.causal_past(4).contains(&0));
    }

    #[test]
    fn aggregate_spans_fills_phase_histograms() {
        let g = HbGraph::build(tiny_trace());
        let mut reg = Registry::new();
        aggregate_spans(&g.spans(), &mut reg);
        assert_eq!(reg.histogram("op_latency").len(), 1);
        assert_eq!(reg.histogram("phase_network_wait").len(), 1);
        assert_eq!(reg.counter("ops").successes(), 1);
    }
}
