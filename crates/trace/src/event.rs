//! Typed trace events with sim-time stamps and JSONL rendering.
//!
//! Every observable action in the simulator and the quorum runtime maps
//! to one [`EventKind`] variant; a recorded [`Event`] adds the virtual
//! time and a monotone sequence number, so a trace is totally ordered
//! even when many events share a tick. Events render to one JSON object
//! per line (JSONL) with a flat schema: `{"t":…,"seq":…,"kind":…,…}`.

use std::fmt::Write as _;

/// A fixed-capacity inline operation label.
///
/// Recording an `op_begin` event must not allocate: labels render into
/// an inline 14-byte buffer (keeping [`EventKind`] at 24 bytes), and
/// longer `Debug` output is truncated at a character boundary.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct OpLabel {
    len: u8,
    buf: [u8; Self::CAP],
}

impl OpLabel {
    /// Inline capacity in bytes.
    pub const CAP: usize = 14;

    /// Renders `op`'s `Debug` form into an inline label, truncating to
    /// the capacity without allocating.
    pub fn from_debug(op: &impl std::fmt::Debug) -> Self {
        let mut label = OpLabel {
            len: 0,
            buf: [0; Self::CAP],
        };
        // Truncation surfaces as a full buffer, not as an error.
        let _ = write!(&mut label, "{op:?}");
        label
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.buf[..usize::from(self.len)]).unwrap_or("")
    }

    /// Appends a string, truncating at capacity (char-boundary safe).
    ///
    /// Together with [`OpLabel::push_u32`] this lets hot paths build
    /// labels without going through the `fmt` machinery.
    pub fn push_str(&mut self, s: &str) {
        let _ = std::fmt::Write::write_str(self, s);
    }

    /// Appends a decimal rendering of `v`, truncating at capacity.
    pub fn push_u32(&mut self, v: u32) {
        // Ten digits cover u32::MAX; render right-to-left into a stack
        // buffer and append the used suffix.
        let mut digits = [0u8; 10];
        let mut i = digits.len();
        let mut v = v;
        loop {
            i -= 1;
            digits[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        let s = std::str::from_utf8(&digits[i..]).expect("ASCII digits");
        self.push_str(s);
    }

    /// Appends a decimal rendering of `v`, truncating at capacity.
    pub fn push_i64(&mut self, v: i64) {
        // Twenty digits cover u64::MAX; render right-to-left into a
        // stack buffer and append the used suffix.
        if v < 0 {
            self.push_str("-");
        }
        let mut digits = [0u8; 20];
        let mut i = digits.len();
        let mut m = v.unsigned_abs();
        loop {
            i -= 1;
            digits[i] = b'0' + (m % 10) as u8;
            m /= 10;
            if m == 0 {
                break;
            }
        }
        let s = std::str::from_utf8(&digits[i..]).expect("ASCII digits");
        self.push_str(s);
    }
}

impl std::fmt::Write for OpLabel {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        let room = Self::CAP - usize::from(self.len);
        let take = if s.len() <= room {
            s.len()
        } else {
            // Largest prefix within `room` that ends on a char boundary.
            let mut t = room;
            while t > 0 && !s.is_char_boundary(t) {
                t -= 1;
            }
            t
        };
        self.buf[usize::from(self.len)..usize::from(self.len) + take]
            .copy_from_slice(&s.as_bytes()[..take]);
        self.len += take as u8;
        Ok(())
    }
}

impl Default for OpLabel {
    fn default() -> Self {
        OpLabel {
            len: 0,
            buf: [0; Self::CAP],
        }
    }
}

impl std::ops::Deref for OpLabel {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl std::fmt::Display for OpLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::fmt::Debug for OpLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

/// The groups payload of [`EventKind::PartitionSet`], held behind one
/// *thin* pointer.
///
/// A fat `Box<[Box<[u32]>]>` directly in the enum is measurably hostile
/// to the tracing hot path: its presence forces every `Tracer::record`
/// to move the enum through a stack temporary and memcpy (~3x slower per
/// record, for *all* variants). The rare partition event pays one extra
/// indirection instead.
#[derive(Debug, Clone, PartialEq, Eq)]
// The "extra" allocation is the point: `Vec<Vec<u32>>` inline would put
// 24 bytes (and a fat move) in the enum; `Box<[…]>` is a fat pointer.
#[allow(clippy::box_collection)]
pub struct PartitionGroups(Box<Vec<Vec<u32>>>);

impl PartitionGroups {
    /// Wraps explicit groups of node indices.
    #[must_use]
    pub fn new(groups: Vec<Vec<u32>>) -> Self {
        PartitionGroups(Box::new(groups))
    }
}

impl std::ops::Deref for PartitionGroups {
    type Target = [Vec<u32>];
    fn deref(&self) -> &[Vec<u32>] {
        &self.0
    }
}

impl FromIterator<Vec<u32>> for PartitionGroups {
    fn from_iter<I: IntoIterator<Item = Vec<u32>>>(iter: I) -> Self {
        PartitionGroups::new(iter.into_iter().collect())
    }
}

/// Why the network dropped a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// The sending node was crashed at send (or delivery) time.
    SourceDown,
    /// The destination node was crashed.
    DestDown,
    /// Source and destination were in different partition groups.
    Partitioned,
    /// The link's random loss fired.
    Loss,
    /// The *directed* link from source to destination was blocked
    /// (asymmetric partition); the reverse direction may still work.
    LinkBlocked,
}

impl DropCause {
    /// The stable string used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            DropCause::SourceDown => "source_down",
            DropCause::DestDown => "dest_down",
            DropCause::Partitioned => "partitioned",
            DropCause::Loss => "loss",
            DropCause::LinkBlocked => "link_blocked",
        }
    }
}

/// How a client operation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// A quorum was assembled and the operation took effect.
    Completed,
    /// The merged view made the operation undefined (e.g. Deq of an
    /// empty queue) and it was refused.
    Refused,
    /// No quorum answered before the client timeout.
    TimedOut,
}

impl OpOutcome {
    /// The stable string used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            OpOutcome::Completed => "completed",
            OpOutcome::Refused => "refused",
            OpOutcome::TimedOut => "timed_out",
        }
    }
}

/// Which quorum a client was assembling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumPhase {
    /// The initial (read) quorum.
    Read,
    /// The final (write) quorum.
    Write,
}

impl QuorumPhase {
    /// The stable string used in JSONL output.
    pub fn as_str(self) -> &'static str {
        match self {
            QuorumPhase::Read => "read",
            QuorumPhase::Write => "write",
        }
    }
}

/// One kind of observable action, with its payload.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A node sent a message into the network.
    MessageSent {
        /// Sending node index.
        src: u32,
        /// Destination node index.
        dst: u32,
        /// Scheduled delivery tick.
        deliver_at: u64,
        /// World-unique message id; the matching `message_delivered` (or
        /// in-flight `message_dropped`) carries the same id, so
        /// send↔deliver edges pair exactly.
        msg_id: u32,
    },
    /// The harness injected a message from outside the simulated system.
    MessageInjected {
        /// Destination node index.
        dst: u32,
        /// Scheduled delivery tick.
        deliver_at: u64,
        /// World-unique message id (shared with its delivery).
        msg_id: u32,
    },
    /// A message reached its destination's handler.
    MessageDelivered {
        /// Receiving node index.
        node: u32,
        /// The id the message was sent (or injected) under.
        msg_id: u32,
    },
    /// The network dropped a message.
    MessageDropped {
        /// Sending node index.
        src: u32,
        /// Destination node index.
        dst: u32,
        /// Why it was dropped.
        cause: DropCause,
        /// The dropped message's id. Send-time drops never produce a
        /// `message_sent` with this id; in-flight drops do.
        msg_id: u32,
    },
    /// A node armed a timer.
    TimerSet {
        /// Owning node index.
        node: u32,
        /// Caller-chosen token identifying the timer.
        token: u64,
        /// Tick at which it fires.
        fire_at: u64,
    },
    /// A timer fired at its owner.
    TimerFired {
        /// Owning node index.
        node: u32,
        /// The timer's token.
        token: u64,
    },
    /// A fault crashed a node.
    NodeCrashed {
        /// Crashed node index.
        node: u32,
    },
    /// A fault recovered a node.
    NodeRecovered {
        /// Recovered node index.
        node: u32,
    },
    /// A fault installed a partition.
    PartitionSet {
        /// The partition's groups of node indices, behind one thin
        /// pointer (see [`PartitionGroups`]).
        groups: PartitionGroups,
    },
    /// A fault healed the partition.
    PartitionHealed,
    /// A fault changed the link loss probability.
    LossRateSet {
        /// The new loss probability.
        probability: f64,
    },
    /// A client started an operation.
    OpBegin {
        /// Client node index.
        node: u32,
        /// Client-local invocation id.
        op_id: u32,
        /// Short operation label, e.g. `"Enq(5)"`.
        op: OpLabel,
    },
    /// A client finished an operation.
    OpEnd {
        /// Client node index.
        node: u32,
        /// Client-local invocation id.
        op_id: u32,
        /// How it ended.
        outcome: OpOutcome,
        /// Ticks from begin to end.
        latency: u64,
    },
    /// A client assembled a quorum.
    QuorumAssembled {
        /// Client node index.
        node: u32,
        /// Client-local invocation id.
        op_id: u32,
        /// Which quorum.
        phase: QuorumPhase,
        /// Number of replicas in the assembled quorum.
        size: u32,
    },
    /// A client's quorum assembly failed (timeout with too few replies).
    QuorumFailed {
        /// Client node index.
        node: u32,
        /// Client-local invocation id.
        op_id: u32,
        /// Which quorum.
        phase: QuorumPhase,
        /// Replies received before the timeout.
        responses: u32,
        /// Replies the assignment required.
        needed: u32,
    },
    /// A client merged replica logs into a view.
    ViewMerged {
        /// Client node index.
        node: u32,
        /// Client-local invocation id of the operation being served.
        op_id: u32,
        /// Number of log entries in the merged view.
        merged_len: u32,
    },
    /// The degradation monitor observed the history leave one or more
    /// lattice levels. Boxed: the payload is fat and rare, and every
    /// recorded event pays for the enum's largest variant.
    LevelTransition(Box<crate::monitor::LevelTransition>),
    /// A fault gray-degraded a node: still alive and responsive, but
    /// every link touching it runs at a delay multiplier.
    GrayDegraded {
        /// The slowed node.
        node: u32,
        /// The integer delay multiplier now in force (≥ 2).
        multiplier: u32,
    },
    /// A fault restored a gray-degraded node to full speed.
    GrayRestored {
        /// The restored node.
        node: u32,
    },
    /// A fault blocked the *directed* link `src → dst` (asymmetric
    /// partition); traffic `dst → src` is unaffected.
    LinkBlocked {
        /// Blocked direction: sender.
        src: u32,
        /// Blocked direction: receiver.
        dst: u32,
    },
    /// A fault unblocked the directed link `src → dst`.
    LinkRestored {
        /// Restored direction: sender.
        src: u32,
        /// Restored direction: receiver.
        dst: u32,
    },
    /// A fault changed the message-duplication probability.
    DuplicationRateSet {
        /// The new duplication probability.
        probability: f64,
    },
    /// The network manufactured a duplicate copy of a sent message. The
    /// copy travels under its own `msg_id` (its delivery pairs with this
    /// event the way a delivery pairs with a send).
    MessageDuplicated {
        /// Sending node index (of the original send).
        src: u32,
        /// Destination node index.
        dst: u32,
        /// The duplicate copy's world-unique id.
        msg_id: u32,
        /// The id of the original message this copy was cloned from.
        orig_msg_id: u32,
    },
    /// Staleness probe: one replica's lag behind the merged frontier.
    ReplicaLagSampled {
        /// The sampled replica.
        site: u32,
        /// Log entries the replica is missing relative to the merged
        /// frontier of all replicas.
        entries_behind: u64,
        /// Sim-time ticks since the replica last matched the merged
        /// frontier.
        time_behind: u64,
    },
    /// Staleness probe: pairwise frontier divergence between two
    /// replicas (entries held by one but not the other).
    FrontierDivergence {
        /// First replica of the pair (`a < b`).
        a: u32,
        /// Second replica of the pair.
        b: u32,
        /// Total entries by which the two frontiers differ.
        entries: u64,
    },
    /// A degradation SLO error budget ran out. Boxed: fat and rare, like
    /// [`EventKind::LevelTransition`].
    SloBudgetExhausted(Box<crate::staleness::SloViolation>),
    /// Profiling: a hierarchical span opened. Spans nest LIFO within a
    /// trace; `wall_ns` is monotone (nanoseconds since the probe was
    /// enabled, derived from `Instant` — never `SystemTime`), while the
    /// event's `t` carries sim time as usual.
    ProfileSpanEnter {
        /// Span name (≤ 14 bytes, inline — see [`OpLabel`]).
        name: OpLabel,
        /// Monotone nanoseconds since the probe's anchor.
        wall_ns: u64,
    },
    /// Profiling: the innermost open span closed; `name` matches its
    /// `profile_span_enter`.
    ProfileSpanExit {
        /// Span name, equal to the matching enter's.
        name: OpLabel,
        /// Monotone nanoseconds since the probe's anchor.
        wall_ns: u64,
    },
    /// Profiling: a monotone counter's accumulated total at flush time.
    /// Hot paths batch increments in the probe and the total is emitted
    /// once, so a trace carries at most a few of these per counter.
    ProfileCounter {
        /// Counter name.
        name: OpLabel,
        /// Accumulated total at emission.
        total: u64,
    },
    /// Profiling: one gauge sample, attributed to the innermost span
    /// open at record time (per-depth samples yield per-depth
    /// timelines, e.g. `frontier_nodes`).
    ProfileGauge {
        /// Gauge name.
        name: OpLabel,
        /// Sampled value.
        value: i64,
    },
}

impl EventKind {
    /// The stable `kind` tag used in JSONL output.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::MessageSent { .. } => "message_sent",
            EventKind::MessageInjected { .. } => "message_injected",
            EventKind::MessageDelivered { .. } => "message_delivered",
            EventKind::MessageDropped { .. } => "message_dropped",
            EventKind::TimerSet { .. } => "timer_set",
            EventKind::TimerFired { .. } => "timer_fired",
            EventKind::NodeCrashed { .. } => "node_crashed",
            EventKind::NodeRecovered { .. } => "node_recovered",
            EventKind::PartitionSet { .. } => "partition_set",
            EventKind::PartitionHealed => "partition_healed",
            EventKind::LossRateSet { .. } => "loss_rate_set",
            EventKind::OpBegin { .. } => "op_begin",
            EventKind::OpEnd { .. } => "op_end",
            EventKind::QuorumAssembled { .. } => "quorum_assembled",
            EventKind::QuorumFailed { .. } => "quorum_failed",
            EventKind::ViewMerged { .. } => "view_merged",
            EventKind::LevelTransition(_) => "level_transition",
            EventKind::GrayDegraded { .. } => "gray_degraded",
            EventKind::GrayRestored { .. } => "gray_restored",
            EventKind::LinkBlocked { .. } => "link_blocked",
            EventKind::LinkRestored { .. } => "link_restored",
            EventKind::DuplicationRateSet { .. } => "duplication_rate_set",
            EventKind::MessageDuplicated { .. } => "message_duplicated",
            EventKind::ReplicaLagSampled { .. } => "replica_lag_sampled",
            EventKind::FrontierDivergence { .. } => "frontier_divergence",
            EventKind::SloBudgetExhausted(_) => "slo_budget_exhausted",
            EventKind::ProfileSpanEnter { .. } => "profile_span_enter",
            EventKind::ProfileSpanExit { .. } => "profile_span_exit",
            EventKind::ProfileCounter { .. } => "profile_counter",
            EventKind::ProfileGauge { .. } => "profile_gauge",
        }
    }
}

/// A recorded event: sim time, sequence number, and the action.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual time (ticks) at which the event happened.
    pub time: u64,
    /// Monotone per-tracer sequence number (total order within a trace).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_str_list(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", escape_json(s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

impl Event {
    /// Renders the event as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"t\":{},\"seq\":{},\"kind\":\"{}\"",
            self.time,
            self.seq,
            self.kind.tag()
        );
        match &self.kind {
            EventKind::MessageSent {
                src,
                dst,
                deliver_at,
                msg_id,
            } => {
                let _ = write!(
                    s,
                    ",\"src\":{src},\"dst\":{dst},\"deliver_at\":{deliver_at},\"msg_id\":{msg_id}"
                );
            }
            EventKind::MessageInjected {
                dst,
                deliver_at,
                msg_id,
            } => {
                let _ = write!(
                    s,
                    ",\"dst\":{dst},\"deliver_at\":{deliver_at},\"msg_id\":{msg_id}"
                );
            }
            EventKind::MessageDelivered { node, msg_id } => {
                let _ = write!(s, ",\"node\":{node},\"msg_id\":{msg_id}");
            }
            EventKind::MessageDropped {
                src,
                dst,
                cause,
                msg_id,
            } => {
                let _ = write!(
                    s,
                    ",\"src\":{src},\"dst\":{dst},\"cause\":\"{}\",\"msg_id\":{msg_id}",
                    cause.as_str()
                );
            }
            EventKind::TimerSet {
                node,
                token,
                fire_at,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"token\":{token},\"fire_at\":{fire_at}"
                );
            }
            EventKind::TimerFired { node, token } => {
                let _ = write!(s, ",\"node\":{node},\"token\":{token}");
            }
            EventKind::NodeCrashed { node } | EventKind::NodeRecovered { node } => {
                let _ = write!(s, ",\"node\":{node}");
            }
            EventKind::PartitionSet { groups } => {
                let rendered: Vec<String> = groups
                    .iter()
                    .map(|g| {
                        let ids: Vec<String> = g.iter().map(|n| n.to_string()).collect();
                        format!("[{}]", ids.join(","))
                    })
                    .collect();
                let _ = write!(s, ",\"groups\":[{}]", rendered.join(","));
            }
            EventKind::PartitionHealed => {}
            EventKind::LossRateSet { probability } => {
                let _ = write!(s, ",\"probability\":{probability}");
            }
            EventKind::OpBegin { node, op_id, op } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"op_id\":{op_id},\"op\":\"{}\"",
                    escape_json(op)
                );
            }
            EventKind::OpEnd {
                node,
                op_id,
                outcome,
                latency,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"op_id\":{op_id},\"outcome\":\"{}\",\"latency\":{latency}",
                    outcome.as_str()
                );
            }
            EventKind::QuorumAssembled {
                node,
                op_id,
                phase,
                size,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"op_id\":{op_id},\"phase\":\"{}\",\"size\":{size}",
                    phase.as_str()
                );
            }
            EventKind::QuorumFailed {
                node,
                op_id,
                phase,
                responses,
                needed,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"op_id\":{op_id},\"phase\":\"{}\",\"responses\":{responses},\"needed\":{needed}",
                    phase.as_str()
                );
            }
            EventKind::ViewMerged {
                node,
                op_id,
                merged_len,
            } => {
                let _ = write!(
                    s,
                    ",\"node\":{node},\"op_id\":{op_id},\"merged_len\":{merged_len}"
                );
            }
            EventKind::LevelTransition(t) => {
                let now_json = match &t.now {
                    Some(n) => format!("\"{}\"", escape_json(n)),
                    None => "null".to_string(),
                };
                let _ = write!(
                    s,
                    ",\"left\":{},\"now\":{},\"witness\":\"{}\",\"op_index\":{}",
                    json_str_list(&t.left),
                    now_json,
                    escape_json(&t.witness),
                    t.op_index
                );
            }
            EventKind::GrayDegraded { node, multiplier } => {
                let _ = write!(s, ",\"node\":{node},\"multiplier\":{multiplier}");
            }
            EventKind::GrayRestored { node } => {
                let _ = write!(s, ",\"node\":{node}");
            }
            EventKind::LinkBlocked { src, dst } | EventKind::LinkRestored { src, dst } => {
                let _ = write!(s, ",\"src\":{src},\"dst\":{dst}");
            }
            EventKind::DuplicationRateSet { probability } => {
                let _ = write!(s, ",\"probability\":{probability}");
            }
            EventKind::MessageDuplicated {
                src,
                dst,
                msg_id,
                orig_msg_id,
            } => {
                let _ = write!(
                    s,
                    ",\"src\":{src},\"dst\":{dst},\"msg_id\":{msg_id},\"orig_msg_id\":{orig_msg_id}"
                );
            }
            EventKind::ReplicaLagSampled {
                site,
                entries_behind,
                time_behind,
            } => {
                let _ = write!(
                    s,
                    ",\"site\":{site},\"entries_behind\":{entries_behind},\"time_behind\":{time_behind}"
                );
            }
            EventKind::FrontierDivergence { a, b, entries } => {
                let _ = write!(s, ",\"a\":{a},\"b\":{b},\"entries\":{entries}");
            }
            EventKind::SloBudgetExhausted(v) => {
                let _ = write!(
                    s,
                    ",\"level\":\"{}\",\"budget\":{},\"spent\":{}",
                    escape_json(&v.level),
                    v.budget,
                    v.spent
                );
            }
            EventKind::ProfileSpanEnter { name, wall_ns }
            | EventKind::ProfileSpanExit { name, wall_ns } => {
                let _ = write!(
                    s,
                    ",\"name\":\"{}\",\"wall_ns\":{wall_ns}",
                    escape_json(name)
                );
            }
            EventKind::ProfileCounter { name, total } => {
                let _ = write!(s, ",\"name\":\"{}\",\"total\":{total}", escape_json(name));
            }
            EventKind::ProfileGauge { name, value } => {
                let _ = write!(s, ",\"name\":\"{}\",\"value\":{value}", escape_json(name));
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_flat_and_tagged() {
        let e = Event {
            time: 42,
            seq: 7,
            kind: EventKind::MessageSent {
                src: 0,
                dst: 3,
                deliver_at: 55,
                msg_id: 12,
            },
        };
        assert_eq!(
            e.to_json(),
            r#"{"t":42,"seq":7,"kind":"message_sent","src":0,"dst":3,"deliver_at":55,"msg_id":12}"#
        );
    }

    #[test]
    fn drop_cause_renders() {
        let e = Event {
            time: 1,
            seq: 0,
            kind: EventKind::MessageDropped {
                src: 2,
                dst: 0,
                cause: DropCause::Partitioned,
                msg_id: 4,
            },
        };
        assert!(e.to_json().contains("\"cause\":\"partitioned\""));
        assert!(e.to_json().contains("\"msg_id\":4"));
    }

    #[test]
    fn event_kind_stays_within_the_hot_path_budget() {
        // Recording copies one `EventKind` per event on the simulator's
        // hot path; the msg_id fields must stay inside the existing
        // 24-byte layout (padding holes), not widen every event.
        assert!(std::mem::size_of::<EventKind>() <= 24);
    }

    #[test]
    fn label_push_helpers_render_without_fmt() {
        let mut l = OpLabel::default();
        l.push_str("Enq(");
        l.push_u32(999_999_999);
        l.push_str(")");
        assert_eq!(l.as_str(), "Enq(999999999)");
        let mut n = OpLabel::default();
        n.push_str("Enq(");
        n.push_i64(-42);
        n.push_str(")");
        assert_eq!(n.as_str(), "Enq(-42)");
        let mut z = OpLabel::default();
        z.push_u32(0);
        assert_eq!(z.as_str(), "0");
        // Truncation at capacity, never a panic.
        let mut t = OpLabel::default();
        t.push_str("abcdefghijklmnop");
        t.push_u32(99);
        assert_eq!(t.as_str().len(), OpLabel::CAP);
    }

    #[test]
    fn partition_groups_render_as_nested_arrays() {
        let e = Event {
            time: 200,
            seq: 3,
            kind: EventKind::PartitionSet {
                groups: PartitionGroups::new(vec![vec![3, 0], vec![1, 2]]),
            },
        };
        assert!(e.to_json().contains("\"groups\":[[3,0],[1,2]]"));
    }

    #[test]
    fn level_transition_renders_witness_and_levels() {
        let e = Event {
            time: 410,
            seq: 99,
            kind: EventKind::LevelTransition(Box::new(crate::monitor::LevelTransition {
                left: vec!["PQ".into()],
                now: Some("MPQ".into()),
                witness: "Deq(5)".into(),
                op_index: 2,
            })),
        };
        let j = e.to_json();
        assert!(j.contains("\"left\":[\"PQ\"]"));
        assert!(j.contains("\"now\":\"MPQ\""));
        assert!(j.contains("\"witness\":\"Deq(5)\""));
    }

    #[test]
    fn escaping_handles_quotes_and_control() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn every_kind_has_a_distinct_tag() {
        let kinds = [
            EventKind::MessageSent {
                src: 0,
                dst: 0,
                deliver_at: 0,
                msg_id: 0,
            },
            EventKind::MessageInjected {
                dst: 0,
                deliver_at: 0,
                msg_id: 0,
            },
            EventKind::MessageDelivered { node: 0, msg_id: 0 },
            EventKind::MessageDropped {
                src: 0,
                dst: 0,
                cause: DropCause::Loss,
                msg_id: 0,
            },
            EventKind::TimerSet {
                node: 0,
                token: 0,
                fire_at: 0,
            },
            EventKind::TimerFired { node: 0, token: 0 },
            EventKind::NodeCrashed { node: 0 },
            EventKind::NodeRecovered { node: 0 },
            EventKind::PartitionSet {
                groups: PartitionGroups::new(Vec::new()),
            },
            EventKind::PartitionHealed,
            EventKind::LossRateSet { probability: 0.0 },
            EventKind::OpBegin {
                node: 0,
                op_id: 0,
                op: OpLabel::default(),
            },
            EventKind::OpEnd {
                node: 0,
                op_id: 0,
                outcome: OpOutcome::Completed,
                latency: 0,
            },
            EventKind::QuorumAssembled {
                node: 0,
                op_id: 0,
                phase: QuorumPhase::Read,
                size: 0,
            },
            EventKind::QuorumFailed {
                node: 0,
                op_id: 0,
                phase: QuorumPhase::Write,
                responses: 0,
                needed: 0,
            },
            EventKind::ViewMerged {
                node: 0,
                op_id: 0,
                merged_len: 0,
            },
            EventKind::LevelTransition(Box::new(crate::monitor::LevelTransition {
                left: vec![],
                now: None,
                witness: String::new(),
                op_index: 0,
            })),
            EventKind::GrayDegraded {
                node: 0,
                multiplier: 2,
            },
            EventKind::GrayRestored { node: 0 },
            EventKind::LinkBlocked { src: 0, dst: 0 },
            EventKind::LinkRestored { src: 0, dst: 0 },
            EventKind::DuplicationRateSet { probability: 0.0 },
            EventKind::MessageDuplicated {
                src: 0,
                dst: 0,
                msg_id: 0,
                orig_msg_id: 0,
            },
            EventKind::ReplicaLagSampled {
                site: 0,
                entries_behind: 0,
                time_behind: 0,
            },
            EventKind::FrontierDivergence {
                a: 0,
                b: 0,
                entries: 0,
            },
            EventKind::SloBudgetExhausted(Box::new(crate::staleness::SloViolation {
                level: String::new(),
                budget: 0,
                spent: 0,
            })),
            EventKind::ProfileSpanEnter {
                name: OpLabel::default(),
                wall_ns: 0,
            },
            EventKind::ProfileSpanExit {
                name: OpLabel::default(),
                wall_ns: 0,
            },
            EventKind::ProfileCounter {
                name: OpLabel::default(),
                total: 0,
            },
            EventKind::ProfileGauge {
                name: OpLabel::default(),
                value: 0,
            },
        ];
        let mut tags: Vec<&str> = kinds.iter().map(|k| k.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), kinds.len());
    }
}
