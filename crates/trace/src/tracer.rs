//! The trace collector: a bounded ring buffer of [`Event`]s.
//!
//! A [`Tracer`] is either *disabled* (the default — recording is a
//! single branch, so instrumented hot paths cost nothing when tracing is
//! off) or *bounded* with a capacity; when full, the oldest events are
//! evicted and counted in [`Tracer::dropped_oldest`], so a long run
//! keeps its most recent window instead of growing without bound.

use crate::codec::{TraceHeader, FORMAT_VERSION};
use crate::event::{Event, EventKind};
use std::io::Write;
use std::path::Path;

/// A stored event: the sequence number is *not* materialised — it is
/// always `seq - len + index` for the index-th oldest held event, so
/// storing it would only widen every slot on the hot path.
#[derive(Debug, Clone)]
struct Stored {
    time: u64,
    kind: EventKind,
}

/// Collects sim-time-stamped events into a bounded ring buffer.
///
/// Implemented as a `Vec` plus a wrap cursor rather than a `VecDeque`:
/// recording is on the simulator's hot path, and overwrite-in-place is
/// measurably cheaper than pop-front/push-back.
#[derive(Debug, Clone)]
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    buf: Vec<Stored>,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
    /// Events discarded by [`Tracer::clear`] (sequence numbers keep
    /// counting across clears, but these are not eviction losses).
    cleared: u64,
    dropped_oldest: u64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing (near-zero overhead).
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            capacity: 0,
            buf: Vec::new(),
            head: 0,
            cleared: 0,
            dropped_oldest: 0,
        }
    }

    /// A tracer that keeps the most recent `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`; use [`Tracer::disabled`] for that.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "use Tracer::disabled() for capacity 0");
        Tracer {
            enabled: true,
            capacity,
            // One small up-front block: avoids both the realloc chain of
            // growing from empty and the cost of eagerly allocating a
            // huge window for short-lived worlds (one per trial).
            buf: Vec::with_capacity(capacity.min(256)),
            head: 0,
            cleared: 0,
            dropped_oldest: 0,
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Pre-sizes the buffer for an expected event count (clamped to the
    /// ring capacity). [`Tracer::bounded`] deliberately starts small so
    /// short-lived worlds stay cheap; callers that know a run will emit
    /// thousands of events can skip the growth-realloc chain up front.
    pub fn reserve_events(&mut self, expected: usize) {
        let target = expected.min(self.capacity);
        if self.buf.capacity() < target {
            self.buf.reserve_exact(target - self.buf.len());
        }
    }

    /// Records one event at the given sim time. A no-op when disabled.
    ///
    /// The global sequence number is *derived* as
    /// `cleared + dropped_oldest + index`, not counted here — the fast
    /// path is one branch plus a push into the pre-sized buffer, and the
    /// wrap path is kept out of line so the common case stays small
    /// enough to inline everywhere.
    #[inline(always)]
    pub fn record(&mut self, time: u64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(Stored { time, kind });
        } else {
            self.record_wrapping(time, kind);
        }
    }

    /// The ring-buffer eviction path, cold by construction: it only runs
    /// once per event *after* the window has filled.
    #[cold]
    fn record_wrapping(&mut self, time: u64, kind: EventKind) {
        self.buf[self.head] = Stored { time, kind };
        self.head += 1;
        if self.head == self.capacity {
            self.head = 0;
        }
        self.dropped_oldest += 1;
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to keep the buffer within capacity.
    pub fn dropped_oldest(&self) -> u64 {
        self.dropped_oldest
    }

    /// The held events, oldest first, with their global sequence numbers
    /// reattached.
    pub fn events(&self) -> impl Iterator<Item = Event> + '_ {
        let base = self.cleared + self.dropped_oldest;
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
            .enumerate()
            .map(move |(i, st)| Event {
                time: st.time,
                seq: base + i as u64,
                kind: st.kind.clone(),
            })
    }

    /// Discards all held events (sequence numbers keep counting up).
    pub fn clear(&mut self) {
        self.cleared += self.buf.len() as u64;
        self.buf.clear();
        self.head = 0;
    }

    /// The versioned header describing this export (format version plus
    /// collection counters), written as the first JSONL line so readers
    /// know whether the window is complete.
    pub fn header(&self) -> TraceHeader {
        TraceHeader {
            version: FORMAT_VERSION,
            events: self.buf.len() as u64,
            dropped_oldest: self.dropped_oldest,
        }
    }

    /// Renders the held events as bare JSONL (one JSON object per line,
    /// no header). For re-ingestable exports use [`Tracer::export_jsonl`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Renders a versioned [`TraceHeader`] line followed by the held
    /// events as JSONL — the round-trippable export format that
    /// [`crate::codec::read_trace`] ingests.
    pub fn export_jsonl(&self) -> String {
        let mut out = self.header().to_json();
        out.push('\n');
        out.push_str(&self.to_jsonl());
        out
    }

    /// Writes the headered export (see [`Tracer::export_jsonl`]) to a file.
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "{}", self.header().to_json())?;
        for e in self.events() {
            writeln!(f, "{}", e.to_json())?;
        }
        f.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropCause;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(1, EventKind::PartitionHealed);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn records_in_order_with_monotone_seq() {
        let mut t = Tracer::bounded(16);
        t.record(5, EventKind::NodeCrashed { node: 1 });
        t.record(5, EventKind::NodeRecovered { node: 1 });
        t.record(9, EventKind::PartitionHealed);
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        let times: Vec<u64> = t.events().map(|e| e.time).collect();
        assert_eq!(times, vec![5, 5, 9]);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Tracer::bounded(3);
        for i in 0..5 {
            t.record(i, EventKind::TimerFired { node: 0, token: i });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped_oldest(), 2);
        let times: Vec<u64> = t.events().map(|e| e.time).collect();
        assert_eq!(times, vec![2, 3, 4]);
        // Sequence numbers are global, not buffer-relative.
        assert_eq!(t.events().next().unwrap().seq, 2);
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let mut t = Tracer::bounded(8);
        t.record(
            1,
            EventKind::MessageDropped {
                src: 0,
                dst: 1,
                cause: DropCause::Loss,
                msg_id: 0,
            },
        );
        t.record(2, EventKind::PartitionHealed);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t\":1,"));
        assert!(lines[1].contains("\"kind\":\"partition_healed\""));
    }

    #[test]
    fn write_jsonl_round_trips_through_a_file() {
        let mut t = Tracer::bounded(4);
        t.record(3, EventKind::NodeCrashed { node: 2 });
        let dir = std::env::temp_dir();
        let path = dir.join("relax_trace_tracer_test.jsonl");
        t.write_jsonl(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, t.export_jsonl());
        let parsed = crate::codec::read_trace(&back).unwrap();
        assert_eq!(parsed.header, Some(t.header()));
        assert_eq!(parsed.events.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn export_jsonl_leads_with_a_versioned_header() {
        let mut t = Tracer::bounded(2);
        for i in 0..3 {
            t.record(i, EventKind::PartitionHealed);
        }
        let first = t.export_jsonl().lines().next().unwrap().to_string();
        assert!(first.contains("\"kind\":\"trace_header\""), "{first}");
        assert!(first.contains("\"version\":3"), "{first}");
        assert!(first.contains("\"events\":2"), "{first}");
        assert!(first.contains("\"dropped_oldest\":1"), "{first}");
    }

    #[test]
    fn clear_keeps_counting_seq() {
        let mut t = Tracer::bounded(4);
        t.record(1, EventKind::PartitionHealed);
        t.clear();
        assert!(t.is_empty());
        t.record(2, EventKind::PartitionHealed);
        assert_eq!(t.events().next().unwrap().seq, 1);
    }
}
