//! Degradation root-cause analysis and trace reports.
//!
//! The paper frames each lattice level as a cost the environment forces
//! on the object; this module closes the loop operationally: given a
//! trace with witnessed [`LevelTransition`]s, it answers *why we
//! degraded*. Starting from a transition's witness `op_end`, it walks
//! the [`HbGraph`] backwards and collects every `message_dropped` in the
//! witness's causal past, then reduces those drops to their
//! fault-attribution causes — the **minimal cut of fault events**
//! (partitions, crashes, loss-rate changes, blocked links, gray
//! degradations, duplication settings) that causally explains the
//! witnessed behavior. Faults that occurred but did not causally precede
//! the witness (e.g. a crash after the duplicate dispatch) are excluded
//! by construction. Gray failures drop nothing and are collected
//! directly from the causal past; duplication faults are reached through
//! the `message_duplicated` events they spawned.
//!
//! [`TraceAnalysis`] bundles the DAG, the per-op [`Span`]s, the
//! root-cause cuts, and an aggregated [`Registry`]; `trace_analyze` in
//! `relax-bench` is a thin CLI over it.

use crate::causality::{aggregate_spans, HbGraph, Span};
use crate::codec::ParsedTrace;
use crate::event::{Event, EventKind};
use crate::metrics::Registry;
use crate::monitor::LevelTransition;
use std::fmt::Write as _;

/// Why one witnessed level transition happened: the fault events in the
/// witness's causal past that explain its dropped messages.
#[derive(Debug, Clone)]
pub struct RootCause {
    /// Event index of the `level_transition` in the trace.
    pub transition_ix: usize,
    /// The transition itself.
    pub transition: LevelTransition,
    /// Event index of the witness `op_end`, when the trace window still
    /// holds it.
    pub witness_ix: Option<usize>,
    /// Event indices of `message_dropped` events in the witness's causal
    /// past (ascending).
    pub dropped: Vec<usize>,
    /// The minimal fault cut: deduplicated event indices of the
    /// `partition_set` / `node_crashed` / `loss_rate_set` /
    /// `link_blocked` / `gray_degraded` / `duplication_rate_set` events
    /// the witnessed behavior is attributed to (ascending).
    pub fault_cut: Vec<usize>,
}

/// A fully analyzed trace: the happens-before DAG, per-operation spans,
/// root causes for every witnessed transition, and aggregated metrics.
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    graph: HbGraph,
    spans: Vec<Span>,
    root_causes: Vec<RootCause>,
}

impl TraceAnalysis {
    /// Analyzes a typed event stream (must be in sequence order).
    pub fn from_events(events: Vec<Event>) -> Self {
        let graph = HbGraph::build(events);
        let spans = graph.spans();
        let root_causes = find_root_causes(&graph);
        TraceAnalysis {
            graph,
            spans,
            root_causes,
        }
    }

    /// Analyzes a re-ingested trace (see [`crate::codec::read_trace`]).
    pub fn from_trace(parsed: ParsedTrace) -> Self {
        Self::from_events(parsed.events)
    }

    /// The happens-before DAG.
    pub fn graph(&self) -> &HbGraph {
        &self.graph
    }

    /// Per-operation spans, in begin order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// One root cause per witnessed level transition, in trace order.
    pub fn root_causes(&self) -> &[RootCause] {
        &self.root_causes
    }

    /// Aggregates the spans into a fresh registry (`ops` availability
    /// counter, `op_latency`, and the four `phase_*` histograms).
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        aggregate_spans(&self.spans, &mut reg);
        reg
    }

    /// The human-readable report: per-op latency attribution summary and
    /// one "why we degraded" section per witnessed transition.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let events = self.graph.events();
        let _ = writeln!(
            out,
            "trace: {} events, {} ops, {} level transition(s)",
            events.len(),
            self.spans.len(),
            self.root_causes.len()
        );
        let mut reg = self.registry();
        let _ = writeln!(out, "\nper-phase latency attribution:");
        out.push_str(&indent(&reg.summary()));
        for rc in &self.root_causes {
            out.push('\n');
            out.push_str(&self.render_root_cause(rc));
        }
        out
    }

    fn render_root_cause(&self, rc: &RootCause) -> String {
        let events = self.graph.events();
        let mut out = String::new();
        let t = &events[rc.transition_ix];
        let now = rc.transition.now.as_deref().unwrap_or("(none)");
        let _ = writeln!(
            out,
            "why we degraded: left [{}] -> now {} at t={}",
            rc.transition.left.join(", "),
            now,
            t.time
        );
        match rc.witness_ix {
            Some(w) => {
                let we = &events[w];
                let latency = match &we.kind {
                    EventKind::OpEnd { latency, .. } => *latency,
                    _ => 0,
                };
                let _ = writeln!(
                    out,
                    "  witness: {} (op #{}, completed at t={}, latency {})",
                    rc.transition.witness, rc.transition.op_index, we.time, latency
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  witness: {} (op #{}, evicted from the trace window)",
                    rc.transition.witness, rc.transition.op_index
                );
            }
        }
        let _ = writeln!(
            out,
            "  dropped messages in the causal past: {}",
            rc.dropped.len()
        );
        if rc.fault_cut.is_empty() {
            let _ = writeln!(out, "  causal fault cut: (empty)");
        } else {
            let _ = writeln!(out, "  causal fault cut ({} events):", rc.fault_cut.len());
            for &f in &rc.fault_cut {
                let e = &events[f];
                let _ = writeln!(out, "    t={:<6} {}", e.time, describe(&e.kind));
            }
        }
        out
    }
}

/// One line of plain English per fault/drop event kind (used by the
/// degradation report).
pub fn describe(kind: &EventKind) -> String {
    match kind {
        EventKind::PartitionSet { groups } => {
            let rendered: Vec<String> = groups
                .iter()
                .map(|g| {
                    let ids: Vec<String> = g.iter().map(u32::to_string).collect();
                    format!("{{{}}}", ids.join(","))
                })
                .collect();
            format!("partition set: {}", rendered.join(" | "))
        }
        EventKind::PartitionHealed => "partition healed".to_string(),
        EventKind::NodeCrashed { node } => format!("node {node} crashed"),
        EventKind::NodeRecovered { node } => format!("node {node} recovered"),
        EventKind::LossRateSet { probability } => {
            format!("loss rate set to {probability}")
        }
        EventKind::GrayDegraded { node, multiplier } => {
            format!("node {node} gray-degraded ({multiplier}x slower)")
        }
        EventKind::GrayRestored { node } => format!("node {node} gray-restored"),
        EventKind::LinkBlocked { src, dst } => format!("link {src}->{dst} blocked"),
        EventKind::LinkRestored { src, dst } => format!("link {src}->{dst} restored"),
        EventKind::DuplicationRateSet { probability } => {
            format!("duplication rate set to {probability}")
        }
        EventKind::MessageDuplicated {
            src,
            dst,
            orig_msg_id,
            ..
        } => format!("message {src}->{dst} duplicated (copy of #{orig_msg_id})"),
        EventKind::MessageDropped {
            src, dst, cause, ..
        } => format!("message {src}->{dst} dropped ({cause:?})"),
        other => format!("{other:?}"),
    }
}

/// Walks every `level_transition` in the trace back to its fault cut.
fn find_root_causes(graph: &HbGraph) -> Vec<RootCause> {
    let events = graph.events();
    let mut out = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let EventKind::LevelTransition(t) = &e.kind else {
            continue;
        };
        let witness_ix = graph.witness_op_end(t.op_index);
        let past = graph.causal_past(i);
        let mut dropped = Vec::new();
        let mut fault_cut = Vec::new();
        for &j in &past {
            match events[j].kind {
                EventKind::MessageDropped { .. } => {
                    dropped.push(j);
                    // The drop's fault attribution is one of its immediate
                    // causes; collect the environment-fault preds.
                    for &p in graph.preds(j) {
                        if matches!(
                            events[p].kind,
                            EventKind::PartitionSet { .. }
                                | EventKind::NodeCrashed { .. }
                                | EventKind::LossRateSet { .. }
                                | EventKind::LinkBlocked { .. }
                        ) {
                            fault_cut.push(p);
                        }
                    }
                }
                // Gray failures drop nothing — the degradation *is* the
                // fault, reached through the send edges it slowed.
                EventKind::GrayDegraded { .. } => fault_cut.push(j),
                // A duplicated message in the past implicates the
                // duplication fault setting directly.
                EventKind::MessageDuplicated { .. } => {
                    for &p in graph.preds(j) {
                        if matches!(events[p].kind, EventKind::DuplicationRateSet { .. }) {
                            fault_cut.push(p);
                        }
                    }
                }
                _ => {}
            }
        }
        fault_cut.sort_unstable();
        fault_cut.dedup();
        out.push(RootCause {
            transition_ix: i,
            transition: (**t).clone(),
            witness_ix,
            dropped,
            fault_cut,
        });
    }
    out
}

fn indent(s: &str) -> String {
    let mut out = String::new();
    for line in s.lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropCause, OpLabel, OpOutcome};

    fn ev(time: u64, seq: u64, kind: EventKind) -> Event {
        Event { time, seq, kind }
    }

    fn label(s: &str) -> OpLabel {
        let mut l = OpLabel::default();
        l.push_str(s);
        l
    }

    /// A condensed flapping-partition story: op 0 completes with a drop
    /// caused by partition A; op 1 (the witness) completes with a drop
    /// caused by partition B; a crash *after* the witness causes a later
    /// drop that must stay out of the cut.
    fn flap_trace() -> Vec<Event> {
        let mut s = 0u64;
        let mut seq = || {
            let v = s;
            s += 1;
            v
        };
        let partition = |groups: Vec<Vec<u32>>| EventKind::PartitionSet {
            groups: crate::event::PartitionGroups::new(groups),
        };
        vec![
            ev(100, seq(), partition(vec![vec![9, 0], vec![1, 2]])),
            ev(
                200,
                seq(),
                EventKind::OpBegin {
                    node: 9,
                    op_id: 1,
                    op: label("Deq"),
                },
            ),
            ev(
                200,
                seq(),
                EventKind::MessageDropped {
                    src: 9,
                    dst: 1,
                    cause: DropCause::Partitioned,
                    msg_id: 0,
                },
            ),
            ev(
                210,
                seq(),
                EventKind::OpEnd {
                    node: 9,
                    op_id: 1,
                    outcome: OpOutcome::Completed,
                    latency: 10,
                },
            ),
            ev(300, seq(), partition(vec![vec![9, 1], vec![0, 2]])),
            ev(
                400,
                seq(),
                EventKind::OpBegin {
                    node: 9,
                    op_id: 2,
                    op: label("Deq"),
                },
            ),
            ev(
                400,
                seq(),
                EventKind::MessageDropped {
                    src: 9,
                    dst: 0,
                    cause: DropCause::Partitioned,
                    msg_id: 1,
                },
            ),
            ev(
                410,
                seq(),
                EventKind::OpEnd {
                    node: 9,
                    op_id: 2,
                    outcome: OpOutcome::Completed,
                    latency: 10,
                },
            ),
            ev(
                410,
                seq(),
                EventKind::LevelTransition(Box::new(LevelTransition {
                    op_index: 1,
                    left: vec!["PQ".into(), "OPQ".into()],
                    now: Some("MPQ".into()),
                    witness: "Deq(5)".into(),
                })),
            ),
            // After the witness: a crash and a drop it causes. Causally
            // unrelated to the transition; must not appear in the cut.
            ev(600, seq(), EventKind::NodeCrashed { node: 1 }),
            ev(
                610,
                seq(),
                EventKind::MessageDropped {
                    src: 9,
                    dst: 1,
                    cause: DropCause::DestDown,
                    msg_id: 2,
                },
            ),
        ]
    }

    #[test]
    fn fault_cut_is_the_flapping_partitions_and_excludes_the_later_crash() {
        let analysis = TraceAnalysis::from_events(flap_trace());
        assert_eq!(analysis.root_causes().len(), 1);
        let rc = &analysis.root_causes()[0];
        assert_eq!(rc.witness_ix, Some(7));
        assert_eq!(rc.dropped, vec![2, 6], "both partitioned drops");
        // The cut is exactly the two partition_set events (ix 0 and 4).
        assert_eq!(rc.fault_cut, vec![0, 4]);
        let events = analysis.graph().events();
        assert!(matches!(
            events[rc.fault_cut[0]].kind,
            EventKind::PartitionSet { .. }
        ));
        assert!(matches!(
            events[rc.fault_cut[1]].kind,
            EventKind::PartitionSet { .. }
        ));
    }

    #[test]
    fn report_names_witness_and_faults() {
        let analysis = TraceAnalysis::from_events(flap_trace());
        let report = analysis.report();
        assert!(report.contains("why we degraded"), "{report}");
        assert!(report.contains("left [PQ, OPQ] -> now MPQ"), "{report}");
        assert!(report.contains("witness: Deq(5)"), "{report}");
        assert!(report.contains("partition set: {9,0} | {1,2}"), "{report}");
        assert!(report.contains("partition set: {9,1} | {0,2}"), "{report}");
        assert!(!report.contains("crashed"), "no crash in the cut: {report}");
    }

    #[test]
    fn transitions_with_no_drops_have_empty_cuts() {
        // A concurrency-caused degradation (no faults at all): the cut
        // is empty and the report says so instead of inventing a cause.
        let events = vec![
            ev(
                10,
                0,
                EventKind::OpEnd {
                    node: 9,
                    op_id: 1,
                    outcome: OpOutcome::Completed,
                    latency: 5,
                },
            ),
            ev(
                10,
                1,
                EventKind::LevelTransition(Box::new(LevelTransition {
                    op_index: 0,
                    left: vec!["PQ".into()],
                    now: Some("MPQ".into()),
                    witness: "Deq(5)".into(),
                })),
            ),
        ];
        let analysis = TraceAnalysis::from_events(events);
        let rc = &analysis.root_causes()[0];
        assert!(rc.fault_cut.is_empty());
        assert!(rc.dropped.is_empty());
        assert!(analysis.report().contains("causal fault cut: (empty)"));
    }

    #[test]
    fn gray_failure_appears_in_the_cut_without_any_drops() {
        let events = vec![
            ev(
                10,
                0,
                EventKind::GrayDegraded {
                    node: 0,
                    multiplier: 50,
                },
            ),
            ev(
                20,
                1,
                EventKind::MessageSent {
                    src: 9,
                    dst: 0,
                    deliver_at: 520,
                    msg_id: 0,
                },
            ),
            ev(520, 2, EventKind::MessageDelivered { node: 9, msg_id: 0 }),
            ev(
                520,
                3,
                EventKind::OpEnd {
                    node: 9,
                    op_id: 1,
                    outcome: OpOutcome::Completed,
                    latency: 500,
                },
            ),
            ev(
                520,
                4,
                EventKind::LevelTransition(Box::new(LevelTransition {
                    op_index: 0,
                    left: vec!["PQ".into()],
                    now: Some("MPQ".into()),
                    witness: "Deq(5)".into(),
                })),
            ),
        ];
        let analysis = TraceAnalysis::from_events(events);
        let rc = &analysis.root_causes()[0];
        assert!(rc.dropped.is_empty(), "gray failures drop nothing");
        assert_eq!(rc.fault_cut, vec![0], "the gray event is the cut");
        assert!(analysis.report().contains("gray-degraded (50x slower)"));
    }

    #[test]
    fn blocked_link_and_duplication_reach_the_cut() {
        let events = vec![
            ev(0, 0, EventKind::DuplicationRateSet { probability: 0.5 }),
            ev(5, 1, EventKind::LinkBlocked { src: 9, dst: 0 }),
            ev(
                10,
                2,
                EventKind::MessageSent {
                    src: 9,
                    dst: 1,
                    deliver_at: 15,
                    msg_id: 0,
                },
            ),
            ev(
                10,
                3,
                EventKind::MessageDuplicated {
                    src: 9,
                    dst: 1,
                    msg_id: 1,
                    orig_msg_id: 0,
                },
            ),
            ev(
                10,
                4,
                EventKind::MessageDropped {
                    src: 9,
                    dst: 0,
                    cause: DropCause::LinkBlocked,
                    msg_id: 2,
                },
            ),
            ev(15, 5, EventKind::MessageDelivered { node: 9, msg_id: 1 }),
            ev(
                20,
                6,
                EventKind::OpEnd {
                    node: 9,
                    op_id: 1,
                    outcome: OpOutcome::Completed,
                    latency: 10,
                },
            ),
            ev(
                20,
                7,
                EventKind::LevelTransition(Box::new(LevelTransition {
                    op_index: 0,
                    left: vec!["PQ".into()],
                    now: Some("MPQ".into()),
                    witness: "Deq(9)".into(),
                })),
            ),
        ];
        let analysis = TraceAnalysis::from_events(events);
        let rc = &analysis.root_causes()[0];
        assert_eq!(rc.dropped, vec![4], "the link-blocked drop");
        assert_eq!(
            rc.fault_cut,
            vec![0, 1],
            "duplication setting + blocked link"
        );
        let report = analysis.report();
        assert!(report.contains("link 9->0 blocked"), "{report}");
        assert!(report.contains("duplication rate set to 0.5"), "{report}");
    }

    #[test]
    fn registry_aggregates_span_phases() {
        let analysis = TraceAnalysis::from_events(flap_trace());
        let mut reg = analysis.registry();
        assert_eq!(reg.get_counter("ops").unwrap().successes(), 2);
        assert_eq!(reg.histogram("op_latency").len(), 2);
    }
}
