//! Online degradation monitor over a relaxation lattice.
//!
//! The paper's central object is a lattice of automata ordered by
//! language inclusion: as faults accumulate, the observed history may
//! fall out of the strongest specification (e.g. PQ) while remaining in
//! weaker relaxations (MPQ, OPQ, DegenPQ). The monitor tracks language
//! membership *online*: one [`FrontierChecker`] per level advances the
//! set of reachable automaton states past each observed operation
//! (exactly the frontier construction `language_upto` uses offline in
//! `relax-automata`), and the moment a frontier empties, that level is
//! dead — the operation that killed it is the *witness*, and the monitor
//! emits a [`LevelTransition`] naming the levels left and the strongest
//! level still inhabited.
//!
//! Levels are registered strongest-first; the lattice need not be a
//! chain (MPQ and OPQ are incomparable), so a single operation can kill
//! several levels at once.

use crate::event::EventKind;
use relax_automata::ObjectAutomaton;
use std::fmt::Debug;

/// Tracks the reachable-state frontier of one automaton along an
/// observed history (online language membership).
///
/// The frontier is a plain vector, deduplicated by equality and pruned
/// by the automaton's [`ObjectAutomaton::subsumes`] preorder: monitored
/// frontiers stay tiny (usually a single state), so linear scans beat
/// hashing whole states, and subsumption keeps nondeterministic
/// remove-or-keep specifications from doubling the frontier per op.
#[derive(Debug, Clone)]
pub struct FrontierChecker<A: ObjectAutomaton> {
    automaton: A,
    frontier: Vec<A::State>,
    /// Previous frontier buffer, recycled to avoid a per-op allocation.
    scratch: Vec<A::State>,
}

impl<A: ObjectAutomaton> FrontierChecker<A> {
    /// Starts at the automaton's initial state.
    pub fn new(automaton: A) -> Self {
        let frontier = vec![automaton.initial_state()];
        FrontierChecker {
            automaton,
            frontier,
            scratch: Vec::new(),
        }
    }

    /// Advances the frontier past `op`. Returns `true` while the
    /// history so far is still in the automaton's language.
    pub fn observe(&mut self, op: &A::Op) -> bool {
        let mut next = std::mem::take(&mut self.scratch);
        next.clear();
        for s in &self.frontier {
            for t in self.automaton.step(s, op) {
                if next
                    .iter()
                    .any(|u| *u == t || self.automaton.subsumes(u, &t))
                {
                    continue;
                }
                next.retain(|u| !self.automaton.subsumes(&t, u));
                next.push(t);
            }
        }
        self.scratch = std::mem::replace(&mut self.frontier, next);
        !self.frontier.is_empty()
    }

    /// Number of states currently reachable (0 once the level is dead).
    pub fn frontier_size(&self) -> usize {
        self.frontier.len()
    }

    /// True while the observed history is in the language.
    pub fn alive(&self) -> bool {
        !self.frontier.is_empty()
    }
}

/// Object-safe view of a level's membership checker, so one monitor can
/// hold levels backed by different automaton types (PQ, MPQ, OPQ, … are
/// distinct types sharing an `Op`).
trait LevelChecker<Op>: Debug {
    fn observe(&mut self, op: &Op) -> bool;
    fn frontier_size(&self) -> usize;
}

impl<A: ObjectAutomaton + Debug> LevelChecker<A::Op> for FrontierChecker<A> {
    fn observe(&mut self, op: &A::Op) -> bool {
        FrontierChecker::observe(self, op)
    }

    fn frontier_size(&self) -> usize {
        FrontierChecker::frontier_size(self)
    }
}

#[derive(Debug)]
struct MonitorLevel<Op> {
    name: String,
    checker: Box<dyn LevelChecker<Op>>,
    alive: bool,
    /// History index of the op that killed this level, once dead.
    died_at: Option<usize>,
}

/// A level-change report: which levels the history just left, the
/// strongest level it still inhabits, and the operation that proved it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelTransition {
    /// Index (into the monitor's observed history) of the witness op.
    pub op_index: usize,
    /// Names of the levels that died on this operation.
    pub left: Vec<String>,
    /// Strongest level still alive, or `None` if every level is dead.
    pub now: Option<String>,
    /// `Debug` rendering of the witness operation.
    pub witness: String,
}

impl LevelTransition {
    /// The trace event corresponding to this transition.
    pub fn to_event(&self) -> EventKind {
        EventKind::LevelTransition(Box::new(self.clone()))
    }
}

/// Classifies an observed operation history against the levels of a
/// relaxation lattice, online.
#[derive(Debug)]
pub struct DegradationMonitor<Op> {
    levels: Vec<MonitorLevel<Op>>,
    observed: usize,
    transitions: Vec<LevelTransition>,
}

impl<Op: Debug> DegradationMonitor<Op> {
    /// An empty monitor; add levels strongest-first with
    /// [`DegradationMonitor::level`].
    pub fn new() -> Self {
        DegradationMonitor {
            levels: Vec::new(),
            observed: 0,
            transitions: Vec::new(),
        }
    }

    /// Registers the next level (call in strongest-to-weakest order).
    /// Builder-style so lattices read as a chain of calls.
    pub fn level<A>(mut self, name: impl Into<String>, automaton: A) -> Self
    where
        A: ObjectAutomaton<Op = Op> + Debug + 'static,
        A::State: 'static,
    {
        self.levels.push(MonitorLevel {
            name: name.into(),
            checker: Box::new(FrontierChecker::new(automaton)),
            alive: true,
            died_at: None,
        });
        self
    }

    /// Feeds one observed operation. Returns the transition if any
    /// level died on it.
    pub fn observe(&mut self, op: &Op) -> Option<&LevelTransition> {
        let op_index = self.observed;
        self.observed += 1;
        let mut left = Vec::new();
        for lvl in self.levels.iter_mut().filter(|l| l.alive) {
            if !lvl.checker.observe(op) {
                lvl.alive = false;
                lvl.died_at = Some(op_index);
                left.push(lvl.name.clone());
            }
        }
        if left.is_empty() {
            return None;
        }
        let now = self.levels.iter().find(|l| l.alive).map(|l| l.name.clone());
        self.transitions.push(LevelTransition {
            op_index,
            left,
            now,
            witness: format!("{op:?}"),
        });
        self.transitions.last()
    }

    /// The strongest level the observed history still inhabits.
    pub fn current_level(&self) -> Option<&str> {
        self.levels
            .iter()
            .find(|l| l.alive)
            .map(|l| l.name.as_str())
    }

    /// Whether the named level is still alive.
    pub fn is_alive(&self, name: &str) -> Option<bool> {
        self.levels.iter().find(|l| l.name == name).map(|l| l.alive)
    }

    /// History index at which the named level died, if it has.
    pub fn died_at(&self, name: &str) -> Option<usize> {
        self.levels
            .iter()
            .find(|l| l.name == name)
            .and_then(|l| l.died_at)
    }

    /// Number of operations observed so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// All level transitions so far, in observation order.
    pub fn transitions(&self) -> &[LevelTransition] {
        &self.transitions
    }

    /// Per-level `(name, alive, frontier size)` snapshot, strongest first.
    pub fn level_status(&self) -> Vec<(&str, bool, usize)> {
        self.levels
            .iter()
            .map(|l| (l.name.as_str(), l.alive, l.checker.frontier_size()))
            .collect()
    }
}

impl<Op: Debug> Default for DegradationMonitor<Op> {
    fn default() -> Self {
        DegradationMonitor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Strict counter: Inc then Dec only while positive.
    #[derive(Debug, Clone)]
    struct Strict;

    /// Relaxed counter: Dec also allowed at zero (saturating).
    #[derive(Debug, Clone)]
    struct Relaxed;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Op {
        Inc,
        Dec,
    }

    impl ObjectAutomaton for Strict {
        type State = i32;
        type Op = Op;
        fn initial_state(&self) -> i32 {
            0
        }
        fn step(&self, s: &i32, op: &Op) -> Vec<i32> {
            match op {
                Op::Inc => vec![s + 1],
                Op::Dec if *s > 0 => vec![s - 1],
                Op::Dec => vec![],
            }
        }
    }

    impl ObjectAutomaton for Relaxed {
        type State = i32;
        type Op = Op;
        fn initial_state(&self) -> i32 {
            0
        }
        fn step(&self, s: &i32, op: &Op) -> Vec<i32> {
            match op {
                Op::Inc => vec![s + 1],
                Op::Dec => vec![(s - 1).max(0)],
            }
        }
    }

    fn monitor() -> DegradationMonitor<Op> {
        DegradationMonitor::new()
            .level("strict", Strict)
            .level("relaxed", Relaxed)
    }

    #[test]
    fn stays_at_strongest_level_while_history_conforms() {
        let mut m = monitor();
        for op in [Op::Inc, Op::Dec, Op::Inc] {
            assert!(m.observe(&op).is_none());
        }
        assert_eq!(m.current_level(), Some("strict"));
        assert!(m.transitions().is_empty());
        assert_eq!(m.observed(), 3);
    }

    #[test]
    fn transition_names_witness_and_remaining_level() {
        let mut m = monitor();
        m.observe(&Op::Inc);
        m.observe(&Op::Dec);
        let t = m.observe(&Op::Dec).expect("strict dies on Dec at zero");
        assert_eq!(t.left, vec!["strict".to_string()]);
        assert_eq!(t.now.as_deref(), Some("relaxed"));
        assert_eq!(t.witness, "Dec");
        assert_eq!(t.op_index, 2);
        assert_eq!(m.current_level(), Some("relaxed"));
        assert_eq!(m.is_alive("strict"), Some(false));
        assert_eq!(m.died_at("strict"), Some(2));
    }

    #[test]
    fn dead_levels_stay_dead_and_do_not_retrigger() {
        let mut m = monitor();
        m.observe(&Op::Dec); // kills strict immediately
        assert_eq!(m.transitions().len(), 1);
        m.observe(&Op::Dec);
        m.observe(&Op::Inc);
        assert_eq!(m.transitions().len(), 1, "no repeat transitions");
        assert_eq!(m.current_level(), Some("relaxed"));
    }

    #[test]
    fn all_levels_dead_reports_none() {
        /// Rejects everything after one step.
        #[derive(Debug, Clone)]
        struct OneShot;
        impl ObjectAutomaton for OneShot {
            type State = u8;
            type Op = Op;
            fn initial_state(&self) -> u8 {
                0
            }
            fn step(&self, s: &u8, _op: &Op) -> Vec<u8> {
                if *s == 0 {
                    vec![1]
                } else {
                    vec![]
                }
            }
        }
        let mut m = DegradationMonitor::new().level("oneshot", OneShot);
        assert!(m.observe(&Op::Inc).is_none());
        let t = m.observe(&Op::Inc).expect("level dies");
        assert_eq!(t.now, None);
        assert_eq!(m.current_level(), None);
    }

    #[test]
    fn one_op_can_kill_multiple_levels() {
        let mut m = DegradationMonitor::new()
            .level("strict-a", Strict)
            .level("strict-b", Strict)
            .level("relaxed", Relaxed);
        let t = m.observe(&Op::Dec).expect("both strict levels die");
        assert_eq!(t.left, vec!["strict-a".to_string(), "strict-b".to_string()]);
        assert_eq!(t.now.as_deref(), Some("relaxed"));
    }

    #[test]
    fn transition_converts_to_trace_event() {
        let mut m = monitor();
        let t = m.observe(&Op::Dec).unwrap().clone();
        match t.to_event() {
            EventKind::LevelTransition(bt) => {
                let LevelTransition {
                    left,
                    now,
                    witness,
                    op_index,
                } = *bt;
                assert_eq!(left, vec!["strict".to_string()]);
                assert_eq!(now.as_deref(), Some("relaxed"));
                assert_eq!(witness, "Dec");
                assert_eq!(op_index, 0);
            }
            other => panic!("wrong event kind: {other:?}"),
        }
    }

    #[test]
    fn frontier_checker_matches_offline_membership() {
        use relax_automata::History;
        // For a batch of histories, the online frontier verdict must equal
        // the offline `accepts` verdict.
        let histories: Vec<Vec<Op>> = vec![
            vec![],
            vec![Op::Inc],
            vec![Op::Dec],
            vec![Op::Inc, Op::Dec],
            vec![Op::Inc, Op::Dec, Op::Dec],
            vec![Op::Inc, Op::Inc, Op::Dec, Op::Dec],
        ];
        for h in histories {
            let mut chk = FrontierChecker::new(Strict);
            let mut online = true;
            for op in &h {
                online = chk.observe(op) && online;
            }
            let offline = Strict.accepts(&History::from(h.clone()));
            assert_eq!(online, offline, "history {h:?}");
        }
    }

    #[test]
    fn level_status_reports_frontier_sizes() {
        let mut m = monitor();
        m.observe(&Op::Dec);
        let status = m.level_status();
        assert_eq!(status[0], ("strict", false, 0));
        assert_eq!(status[1].0, "relaxed");
        assert!(status[1].1);
        assert!(status[1].2 >= 1);
    }
}
