//! A self-contained, offline stand-in for the `proptest` crate.
//!
//! The workspace's property tests were written against the real
//! proptest API; this crate reimplements exactly the subset they use —
//! `proptest!`, integer/float range strategies, tuple strategies,
//! `collection::vec`, `any::<bool>()`, `prop_map`, and the
//! `prop_assert*`/`prop_assume!` macros — on top of a seeded SplitMix64
//! generator, so `cargo test` needs no network access.
//!
//! Semantics: each property runs `PROPTEST_CASES` (default 64) random
//! cases with seeds derived deterministically from the test name, so
//! failures are reproducible. There is no shrinking; the failure report
//! includes the case number and seed instead.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` (does not count as a run).
    Reject,
    /// The case failed an assertion, with this message.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// The seeded generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function (proptest's `prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Types with a canonical "any value" strategy (only what the workspace
/// needs).
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Always produces a clone of the given value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length distribution for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_incl - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The case-loop driver used by the expansion of [`proptest!`].
pub mod test_runner {
    use super::{TestCaseError, TestRng};

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        h
    }

    /// Number of cases to run per property (`PROPTEST_CASES`, default 64).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Runs `body` for the configured number of cases with per-case
    /// deterministic seeds. Panics on the first failing case.
    pub fn run<F>(name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let want = cases();
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        let mut case = 0u64;
        while accepted < want {
            let seed = base.wrapping_add(case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = TestRng::seed_from_u64(seed);
            match body(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected <= want * 16,
                        "property {name}: too many prop_assume! rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property {name} failed at case #{case} (seed {seed:#x}): {msg}")
                }
            }
            case += 1;
        }
    }
}

/// Declares property tests: `proptest! { #[test] fn f(x in strat) { … } }`.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })()
                });
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case (retried with a fresh one) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Just, Map, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..10, y in -5i64..5, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u32..100, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 100));
        }

        #[test]
        fn tuples_and_map(pair in (0u8..2, 0i64..3).prop_map(|(a, b)| (a as i64) + b) ) {
            prop_assert!((0..4).contains(&pair));
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn bools_take_both_values(bits in collection::vec(any::<bool>(), 64..65)) {
            prop_assert!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        crate::test_runner::run("always_fails", |_rng| {
            Err(crate::TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn runs_are_deterministic() {
        let collect = || {
            let mut out = Vec::new();
            crate::test_runner::run("det", |rng| {
                out.push(rng.next_u64());
                Ok(())
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
