//! Cross-crate integration: the transactional print spooler against the
//! atomic-queue lattice of §4.2.

use relaxation_lattice::atomic::AtomicAutomaton;
use relaxation_lattice::atomic::{
    is_online_hybrid_atomic, serializable_in_commit_order, serializable_in_order, DequeueStrategy,
    Schedule, Spooler, SpoolerConfig, TxId, TxOp,
};
use relaxation_lattice::automata::{History, ObjectAutomaton};
use relaxation_lattice::queues::{FifoAutomaton, QueueOp, SemiqueueAutomaton, StutteringAutomaton};

fn run(
    strategy: DequeueStrategy,
    printers: usize,
    abort_p: f64,
    seed: u64,
) -> relaxation_lattice::atomic::SpoolerReport {
    Spooler::new(SpoolerConfig {
        strategy,
        printers,
        jobs: 14,
        print_time: 3,
        abort_probability: abort_p,
        seed,
    })
    .run()
}

#[test]
fn the_paper_section5_claim_holds_operationally() {
    // "in a system where no more than k transactions concurrently access
    // a semiqueue, no item will be dequeued out of order with respect to
    // more than k items."
    for d in 1..=5 {
        for seed in 0..4 {
            let r = run(DequeueStrategy::Optimistic, d, 0.2, seed);
            assert!(r.max_concurrent_dequeuers <= d);
            assert!(
                r.max_deq_position < d.max(1),
                "d={d} seed={seed}: position {} out of bound",
                r.max_deq_position
            );
        }
    }
}

#[test]
fn optimistic_schedules_are_hybrid_atomic_for_semiqueue_d() {
    for seed in 0..6 {
        let d = 3;
        let r = run(DequeueStrategy::Optimistic, d, 0.1, seed);
        assert!(serializable_in_commit_order(
            &SemiqueueAutomaton::new(d),
            &r.schedule
        ));
        // And NOT, in general, for the FIFO queue — the degradation is
        // real (at least for some seed; check the union).
    }
    let degraded = (0..6).any(|seed| {
        let r = run(DequeueStrategy::Optimistic, 3, 0.1, seed);
        !serializable_in_commit_order(&FifoAutomaton::new(), &r.schedule)
    });
    assert!(degraded, "expected some run to leave FIFO behavior");
}

#[test]
fn pessimistic_schedules_are_atomic_for_stuttering_d() {
    for seed in 0..6 {
        let d = 3;
        let r = run(DequeueStrategy::Pessimistic, d, 0.1, seed);
        // Witness order: dequeuers sorted by printed item, ties by commit
        // position (see relax-atomic's spooler tests for why commit order
        // alone is insufficient).
        let committed = r.schedule.committed();
        let item_of = |tx: TxId| -> Option<i64> {
            r.schedule.steps().iter().find_map(|s| match s {
                TxOp::Op {
                    tx: t,
                    op: QueueOp::Deq(i),
                } if *t == tx => Some(*i),
                _ => None,
            })
        };
        let mut dequeuers: Vec<(i64, usize, TxId)> = committed
            .iter()
            .enumerate()
            .filter_map(|(pos, &tx)| item_of(tx).map(|i| (i, pos, tx)))
            .collect();
        dequeuers.sort_unstable();
        let mut order = vec![TxId(0)];
        order.extend(dequeuers.into_iter().map(|(_, _, tx)| tx));
        assert!(
            serializable_in_order(
                &StutteringAutomaton::new(d as u32),
                &r.schedule.perm(),
                &order
            ),
            "seed {seed}"
        );
    }
}

#[test]
fn atomic_automaton_agrees_with_checker_on_small_schedules() {
    // Build a few schedules by hand and confirm the Atomic(A) automaton
    // (state-based) agrees with the standalone checker.
    let base = FifoAutomaton::new();
    let automaton = AtomicAutomaton::new(base);
    let cases: Vec<(Vec<TxOp<QueueOp>>, bool)> = vec![
        (
            vec![
                TxOp::Op {
                    tx: TxId(1),
                    op: QueueOp::Enq(1),
                },
                TxOp::Commit(TxId(1)),
                TxOp::Op {
                    tx: TxId(2),
                    op: QueueOp::Deq(1),
                },
                TxOp::Commit(TxId(2)),
            ],
            true,
        ),
        (
            vec![
                TxOp::Op {
                    tx: TxId(1),
                    op: QueueOp::Enq(1),
                },
                TxOp::Commit(TxId(1)),
                TxOp::Op {
                    tx: TxId(2),
                    op: QueueOp::Deq(1),
                },
                TxOp::Op {
                    tx: TxId(3),
                    op: QueueOp::Deq(1),
                },
            ],
            false,
        ),
    ];
    for (steps, expected) in cases {
        let h = History::from(steps.clone());
        assert_eq!(automaton.accepts(&h), expected, "{steps:?}");
        let schedule = Schedule::from_steps(steps);
        if expected {
            assert!(is_online_hybrid_atomic(&FifoAutomaton::new(), &schedule));
        }
    }
}

#[test]
fn lock_based_blocking_never_degrades() {
    for d in [1usize, 3, 6] {
        for seed in 0..3 {
            let r = run(DequeueStrategy::BlockingFifo, d, 0.15, seed);
            assert_eq!(r.duplicates, 0);
            assert_eq!(r.max_deq_position, 0);
            assert!(serializable_in_commit_order(
                &FifoAutomaton::new(),
                &r.schedule
            ));
            // Strict 2PL serializes dequeuers: never more than one active.
            assert!(r.max_concurrent_dequeuers <= 1);
        }
    }
}
