//! Differential tests: the subset-graph language engine vs the retained
//! naive enumerators, on seeded random automata.
//!
//! The naive module is the executable specification: it materializes
//! every accepted history, so disagreement at any bound is an engine
//! bug. Random automata cover shapes the hand-written queue examples
//! never reach — unreachable operations, dead-end states, heavy
//! nondeterministic fan-out.

use std::collections::HashSet;

use relaxation_lattice::automata::language::naive;
use relaxation_lattice::automata::subset::{compare_upto, CompareOptions, SubsetGraph};
use relaxation_lattice::automata::{
    equal_upto, included_upto, language_sizes, LanguageDifference, ObjectAutomaton, SplitMix64,
};

/// A random nondeterministic automaton over states `0..states` and
/// operations `0..ops`, with a fixed transition table drawn from a seed.
#[derive(Debug, Clone)]
struct RandomAutomaton {
    states: u8,
    /// `table[s][op]` = successor states of `δ(s, op)` (possibly empty).
    table: Vec<Vec<Vec<u8>>>,
}

impl RandomAutomaton {
    /// Draws a table where each `(state, op)` pair gets each successor
    /// independently with probability `density` (so δ is partial and
    /// nondeterministic in roughly equal measure).
    fn generate(seed: u64, states: u8, ops: u8, density: f64) -> Self {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let table = (0..states)
            .map(|_| {
                (0..ops)
                    .map(|_| {
                        (0..states)
                            .filter(|_| rng.gen_bool(density))
                            .collect::<Vec<u8>>()
                    })
                    .collect()
            })
            .collect();
        RandomAutomaton { states, table }
    }

    fn alphabet(&self) -> Vec<u8> {
        (0..self.table[0].len() as u8).collect()
    }
}

impl ObjectAutomaton for RandomAutomaton {
    type State = u8;
    type Op = u8;

    fn initial_state(&self) -> u8 {
        0
    }

    fn step(&self, s: &u8, op: &u8) -> Vec<u8> {
        debug_assert!(*s < self.states);
        self.table[*s as usize][*op as usize].clone()
    }
}

/// A seeded pair of random automata over a shared alphabet.
fn random_pair(seed: u64) -> (RandomAutomaton, RandomAutomaton, Vec<u8>) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let states = 2 + (rng.next_u64() % 4) as u8; // 2..=5
    let ops = 2 + (rng.next_u64() % 2) as u8; // 2..=3
    let density = 0.15 + rng.next_f64() * 0.35;
    let a = RandomAutomaton::generate(rng.next_u64(), states, ops, density);
    let b = RandomAutomaton::generate(rng.next_u64(), states, ops, density);
    let alphabet = a.alphabet();
    (a, b, alphabet)
}

const SEEDS: u64 = 60;
const MAX_LEN: usize = 5;

#[test]
fn engine_sizes_match_naive_enumeration() {
    for seed in 0..SEEDS {
        let (a, _, alphabet) = random_pair(seed);
        let lang = naive::language_upto(&a, &alphabet, MAX_LEN);
        let mut by_len = vec![0usize; MAX_LEN + 1];
        for h in &lang {
            by_len[h.len()] += 1;
        }
        assert_eq!(
            language_sizes(&a, &alphabet, MAX_LEN),
            by_len,
            "seed {seed}"
        );
    }
}

#[test]
fn engine_inclusion_matches_naive_and_witnesses_are_real() {
    for seed in 0..SEEDS {
        let (a, b, alphabet) = random_pair(seed);
        let engine = included_upto(&a, &b, &alphabet, MAX_LEN);
        let naive_verdict = naive::included_upto(&a, &b, &alphabet, MAX_LEN);
        assert_eq!(
            engine.is_ok(),
            naive_verdict.is_ok(),
            "seed {seed}: engine {engine:?} vs naive {naive_verdict:?}"
        );
        if let Err(ce) = engine {
            assert!(ce.history.len() <= MAX_LEN, "seed {seed}");
            assert!(a.accepts(&ce.history), "seed {seed}: left rejects witness");
            assert!(
                !b.accepts(&ce.history),
                "seed {seed}: right accepts witness"
            );
        }
    }
}

#[test]
fn engine_equality_matches_naive_and_differences_are_real() {
    for seed in 0..SEEDS {
        let (a, b, alphabet) = random_pair(seed);
        let engine = equal_upto(&a, &b, &alphabet, MAX_LEN);
        let naive_verdict = naive::equal_upto(&a, &b, &alphabet, MAX_LEN);
        assert_eq!(engine.is_ok(), naive_verdict.is_ok(), "seed {seed}");
        match engine {
            Ok(()) => {}
            Err(LanguageDifference::LeftNotInRight(h)) => {
                assert!(a.accepts(&h) && !b.accepts(&h), "seed {seed}");
            }
            Err(LanguageDifference::RightNotInLeft(h)) => {
                assert!(b.accepts(&h) && !a.accepts(&h), "seed {seed}");
            }
        }
    }
}

#[test]
fn counting_walk_counts_match_naive_on_both_sides() {
    for seed in 0..SEEDS {
        let (a, b, alphabet) = random_pair(seed);
        let cmp = compare_upto(&a, &b, &alphabet, MAX_LEN, CompareOptions::counting());
        assert_eq!(
            cmp.left_total() as usize,
            naive::language_upto(&a, &alphabet, MAX_LEN).len(),
            "seed {seed}"
        );
        assert_eq!(
            cmp.right_total() as usize,
            naive::language_upto(&b, &alphabet, MAX_LEN).len(),
            "seed {seed}"
        );
    }
}

#[test]
fn subset_graph_is_prefix_closed_and_reaches_what_it_claims() {
    for seed in 0..SEEDS / 3 {
        let (a, _, alphabet) = random_pair(seed);
        let graph = SubsetGraph::explore(&a, &alphabet, MAX_LEN);
        let lang = naive::language_upto(&a, &alphabet, MAX_LEN);
        for (depth, level) in graph.levels().iter().enumerate() {
            for (i, node) in level.iter().enumerate() {
                let h = graph.history_of(depth, i);
                assert_eq!(h.len(), depth, "seed {seed}");
                // Prefix closure: the reconstructed history and all its
                // prefixes are accepted.
                for n in 0..=depth {
                    let prefix: Vec<u8> = h.ops()[..n].to_vec();
                    assert!(
                        lang.contains(&prefix.into()),
                        "seed {seed}: prefix of length {n} missing"
                    );
                }
                // The node's set is exactly δ*(H), and it is never empty.
                let reached: HashSet<u8> = a.delta_star(&h);
                assert!(!reached.is_empty(), "seed {seed}: empty set interned");
                let mut reached: Vec<u8> = reached.into_iter().collect();
                reached.sort_unstable();
                assert_eq!(reached.as_slice(), graph.set(node.set), "seed {seed}");
            }
        }
    }
}

#[test]
fn parallel_walks_match_sequential_on_random_automata() {
    for seed in 0..SEEDS / 3 {
        let (a, b, alphabet) = random_pair(seed);
        let seq = compare_upto(
            &a,
            &b,
            &alphabet,
            MAX_LEN,
            CompareOptions {
                threads: Some(1),
                ..CompareOptions::counting()
            },
        );
        for threads in [2, 5] {
            let par = compare_upto(
                &a,
                &b,
                &alphabet,
                MAX_LEN,
                CompareOptions {
                    threads: Some(threads),
                    ..CompareOptions::counting()
                },
            );
            assert_eq!(seq.left_sizes, par.left_sizes, "seed {seed} t{threads}");
            assert_eq!(seq.right_sizes, par.right_sizes, "seed {seed} t{threads}");
            assert_eq!(
                seq.left_not_in_right.is_some(),
                par.left_not_in_right.is_some(),
                "seed {seed} t{threads}"
            );
            assert_eq!(
                seq.peak_level_width, par.peak_level_width,
                "seed {seed} t{threads}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Symmetry-reduced engine: the orbit-canonicalized walks must be
// observationally identical to the unreduced engine (and hence to the
// naive enumerators) wherever the policy is equivariant.
// ---------------------------------------------------------------------------

use relaxation_lattice::automata::subset::IntersectionAutomaton;
use relaxation_lattice::automata::symmetry::{
    compare_upto_reduced, ReducedSubsetGraph, TrivialSymmetry,
};
use relaxation_lattice::automata::History;
use relaxation_lattice::queues::{
    queue_alphabet, QueueItemSymmetry, QueueOp, SemiqueueAutomaton, SsQueueAutomaton,
    StutteringAutomaton,
};

#[test]
fn reduced_engine_with_trivial_policy_matches_unreduced_on_random_automata() {
    // The one-element group makes every automaton equivariant, so the
    // reduced code path must reproduce the unreduced engine exactly —
    // counts, verdicts, witness depths, and node counts.
    for seed in 0..SEEDS / 2 {
        let (a, b, alphabet) = random_pair(seed);
        let graph = SubsetGraph::explore(&a, &alphabet, MAX_LEN);
        let reduced = ReducedSubsetGraph::explore(&a, &alphabet, MAX_LEN, &TrivialSymmetry);
        assert_eq!(graph.sizes(), reduced.sizes(), "seed {seed}");
        assert_eq!(
            graph.peak_level_width(),
            reduced.peak_level_width(),
            "seed {seed}"
        );

        let full = compare_upto(&a, &b, &alphabet, MAX_LEN, CompareOptions::counting());
        let red = compare_upto_reduced(
            &a,
            &b,
            &alphabet,
            MAX_LEN,
            CompareOptions::counting(),
            &TrivialSymmetry,
        );
        assert_eq!(full.left_sizes, red.left_sizes, "seed {seed}");
        assert_eq!(full.right_sizes, red.right_sizes, "seed {seed}");
        assert_eq!(
            full.left_not_in_right.as_ref().map(|h| h.len()),
            red.left_not_in_right.as_ref().map(|h| h.len()),
            "seed {seed}"
        );
        assert_eq!(
            full.right_not_in_left.as_ref().map(|h| h.len()),
            red.right_not_in_left.as_ref().map(|h| h.len()),
            "seed {seed}"
        );
    }
}

#[test]
fn orbit_reduced_queue_graphs_match_naive_counts() {
    // Item permutation is equivariant for the equality-based queue
    // types; orbit-reduced per-length counts must equal the naive
    // enumeration's exactly while the frontier shrinks.
    let items = vec![1, 2, 3];
    let alphabet = queue_alphabet(&items);
    let sym = QueueItemSymmetry::new(&items);
    let max_len = 4;

    let stut = StutteringAutomaton::new(2);
    let reduced = ReducedSubsetGraph::explore(&stut, &alphabet, max_len, &sym);
    let lang = naive::language_upto(&stut, &alphabet, max_len);
    let mut by_len = vec![0u64; max_len + 1];
    for h in &lang {
        by_len[h.len()] += 1;
    }
    assert_eq!(reduced.sizes(), by_len);
    let full = SubsetGraph::explore(&stut, &alphabet, max_len);
    assert!(reduced.peak_level_width() < full.peak_level_width());

    // Reconstructed orbit histories are genuine histories of the
    // ORIGINAL automaton (relabelings composed away).
    for (depth, level) in reduced.levels().iter().enumerate() {
        for i in 0..level.len() {
            let h = reduced.history_of(&sym, depth, i);
            assert!(stut.accepts(&h), "reconstructed {h:?} rejected");
        }
    }
}

#[test]
fn ssqueue_join_check_survives_orbit_reduction() {
    // The PR-3 lattice finding in the SSqueue_{2,2} lattice: the join of
    // the Stuttering_2 and Semiqueue_2 constraint points is the full
    // constraint set, which φ maps to SSqueue_{1,1} = FIFO, yet
    // L(Stuttering_2) ∩ L(Semiqueue_2) strictly exceeds L(FIFO) from
    // length 5 — so the two-chain map stops preserving joins there. The
    // reduced product walk must reproduce the verdict, the exact counts,
    // and a genuine witness.
    let items = vec![1, 2];
    let alphabet = queue_alphabet(&items);
    let sym = QueueItemSymmetry::new(&items);
    let join = IntersectionAutomaton::new(StutteringAutomaton::new(2), SemiqueueAutomaton::new(2));
    let phi_of_join = SsQueueAutomaton::new(1, 1);

    let known = History::from(vec![
        QueueOp::Enq(1),
        QueueOp::Enq(2),
        QueueOp::Enq(1),
        QueueOp::Deq(1),
        QueueOp::Deq(1),
    ]);
    assert!(join.accepts(&known), "join must accept the PR-3 witness");
    assert!(
        !phi_of_join.accepts(&known),
        "φ(c ∨ d) = SSqueue_{{1,1}} must reject the PR-3 witness"
    );

    let full = compare_upto(
        &join,
        &phi_of_join,
        &alphabet,
        5,
        CompareOptions::counting(),
    );
    let reduced = compare_upto_reduced(
        &join,
        &phi_of_join,
        &alphabet,
        5,
        CompareOptions::counting(),
        &sym,
    );
    assert_eq!(full.left_sizes, reduced.left_sizes);
    assert_eq!(full.right_sizes, reduced.right_sizes);
    assert!(reduced.peak_level_width < full.peak_level_width);

    let witness = reduced
        .left_not_in_right
        .as_ref()
        .expect("join exceeds φ(c ∨ d) within length 5");
    assert_eq!(
        witness.len(),
        full.left_not_in_right
            .as_ref()
            .expect("unreduced finds it")
            .len(),
        "reduced witness must be as shallow as the unreduced one"
    );
    assert!(join.accepts(witness), "reduced witness rejected by join");
    assert!(
        !phi_of_join.accepts(witness),
        "reduced witness accepted by φ(c ∨ d)"
    );
}

#[test]
fn shared_taxi_walk_matches_naive_at_small_bounds() {
    use relaxation_lattice::core::theorem4::{
        verify_taxi_lattice, verify_taxi_lattice_naive, verify_taxi_lattice_perpoint,
    };
    let shared = verify_taxi_lattice(&[1, 2], 4);
    let perpoint = verify_taxi_lattice_perpoint(&[1, 2], 4);
    let naive_v = verify_taxi_lattice_naive(&[1, 2], 4);
    for ((s, p), n) in shared
        .points
        .iter()
        .zip(&perpoint.points)
        .zip(&naive_v.points)
    {
        assert_eq!(s.point, p.point);
        assert_eq!(s.language_size, p.language_size, "{:?}", s.point);
        assert_eq!(s.language_size, n.language_size, "{:?}", s.point);
        assert!(s.holds() && p.holds() && n.holds(), "{:?}", s.point);
    }
}
