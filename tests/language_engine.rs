//! Differential tests: the subset-graph language engine vs the retained
//! naive enumerators, on seeded random automata.
//!
//! The naive module is the executable specification: it materializes
//! every accepted history, so disagreement at any bound is an engine
//! bug. Random automata cover shapes the hand-written queue examples
//! never reach — unreachable operations, dead-end states, heavy
//! nondeterministic fan-out.

use std::collections::HashSet;

use relaxation_lattice::automata::language::naive;
use relaxation_lattice::automata::subset::{compare_upto, CompareOptions, SubsetGraph};
use relaxation_lattice::automata::{
    equal_upto, included_upto, language_sizes, LanguageDifference, ObjectAutomaton, SplitMix64,
};

/// A random nondeterministic automaton over states `0..states` and
/// operations `0..ops`, with a fixed transition table drawn from a seed.
#[derive(Debug, Clone)]
struct RandomAutomaton {
    states: u8,
    /// `table[s][op]` = successor states of `δ(s, op)` (possibly empty).
    table: Vec<Vec<Vec<u8>>>,
}

impl RandomAutomaton {
    /// Draws a table where each `(state, op)` pair gets each successor
    /// independently with probability `density` (so δ is partial and
    /// nondeterministic in roughly equal measure).
    fn generate(seed: u64, states: u8, ops: u8, density: f64) -> Self {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let table = (0..states)
            .map(|_| {
                (0..ops)
                    .map(|_| {
                        (0..states)
                            .filter(|_| rng.gen_bool(density))
                            .collect::<Vec<u8>>()
                    })
                    .collect()
            })
            .collect();
        RandomAutomaton { states, table }
    }

    fn alphabet(&self) -> Vec<u8> {
        (0..self.table[0].len() as u8).collect()
    }
}

impl ObjectAutomaton for RandomAutomaton {
    type State = u8;
    type Op = u8;

    fn initial_state(&self) -> u8 {
        0
    }

    fn step(&self, s: &u8, op: &u8) -> Vec<u8> {
        debug_assert!(*s < self.states);
        self.table[*s as usize][*op as usize].clone()
    }
}

/// A seeded pair of random automata over a shared alphabet.
fn random_pair(seed: u64) -> (RandomAutomaton, RandomAutomaton, Vec<u8>) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let states = 2 + (rng.next_u64() % 4) as u8; // 2..=5
    let ops = 2 + (rng.next_u64() % 2) as u8; // 2..=3
    let density = 0.15 + rng.next_f64() * 0.35;
    let a = RandomAutomaton::generate(rng.next_u64(), states, ops, density);
    let b = RandomAutomaton::generate(rng.next_u64(), states, ops, density);
    let alphabet = a.alphabet();
    (a, b, alphabet)
}

const SEEDS: u64 = 60;
const MAX_LEN: usize = 5;

#[test]
fn engine_sizes_match_naive_enumeration() {
    for seed in 0..SEEDS {
        let (a, _, alphabet) = random_pair(seed);
        let lang = naive::language_upto(&a, &alphabet, MAX_LEN);
        let mut by_len = vec![0usize; MAX_LEN + 1];
        for h in &lang {
            by_len[h.len()] += 1;
        }
        assert_eq!(
            language_sizes(&a, &alphabet, MAX_LEN),
            by_len,
            "seed {seed}"
        );
    }
}

#[test]
fn engine_inclusion_matches_naive_and_witnesses_are_real() {
    for seed in 0..SEEDS {
        let (a, b, alphabet) = random_pair(seed);
        let engine = included_upto(&a, &b, &alphabet, MAX_LEN);
        let naive_verdict = naive::included_upto(&a, &b, &alphabet, MAX_LEN);
        assert_eq!(
            engine.is_ok(),
            naive_verdict.is_ok(),
            "seed {seed}: engine {engine:?} vs naive {naive_verdict:?}"
        );
        if let Err(ce) = engine {
            assert!(ce.history.len() <= MAX_LEN, "seed {seed}");
            assert!(a.accepts(&ce.history), "seed {seed}: left rejects witness");
            assert!(
                !b.accepts(&ce.history),
                "seed {seed}: right accepts witness"
            );
        }
    }
}

#[test]
fn engine_equality_matches_naive_and_differences_are_real() {
    for seed in 0..SEEDS {
        let (a, b, alphabet) = random_pair(seed);
        let engine = equal_upto(&a, &b, &alphabet, MAX_LEN);
        let naive_verdict = naive::equal_upto(&a, &b, &alphabet, MAX_LEN);
        assert_eq!(engine.is_ok(), naive_verdict.is_ok(), "seed {seed}");
        match engine {
            Ok(()) => {}
            Err(LanguageDifference::LeftNotInRight(h)) => {
                assert!(a.accepts(&h) && !b.accepts(&h), "seed {seed}");
            }
            Err(LanguageDifference::RightNotInLeft(h)) => {
                assert!(b.accepts(&h) && !a.accepts(&h), "seed {seed}");
            }
        }
    }
}

#[test]
fn counting_walk_counts_match_naive_on_both_sides() {
    for seed in 0..SEEDS {
        let (a, b, alphabet) = random_pair(seed);
        let cmp = compare_upto(&a, &b, &alphabet, MAX_LEN, CompareOptions::counting());
        assert_eq!(
            cmp.left_total() as usize,
            naive::language_upto(&a, &alphabet, MAX_LEN).len(),
            "seed {seed}"
        );
        assert_eq!(
            cmp.right_total() as usize,
            naive::language_upto(&b, &alphabet, MAX_LEN).len(),
            "seed {seed}"
        );
    }
}

#[test]
fn subset_graph_is_prefix_closed_and_reaches_what_it_claims() {
    for seed in 0..SEEDS / 3 {
        let (a, _, alphabet) = random_pair(seed);
        let graph = SubsetGraph::explore(&a, &alphabet, MAX_LEN);
        let lang = naive::language_upto(&a, &alphabet, MAX_LEN);
        for (depth, level) in graph.levels().iter().enumerate() {
            for (i, node) in level.iter().enumerate() {
                let h = graph.history_of(depth, i);
                assert_eq!(h.len(), depth, "seed {seed}");
                // Prefix closure: the reconstructed history and all its
                // prefixes are accepted.
                for n in 0..=depth {
                    let prefix: Vec<u8> = h.ops()[..n].to_vec();
                    assert!(
                        lang.contains(&prefix.into()),
                        "seed {seed}: prefix of length {n} missing"
                    );
                }
                // The node's set is exactly δ*(H), and it is never empty.
                let reached: HashSet<u8> = a.delta_star(&h);
                assert!(!reached.is_empty(), "seed {seed}: empty set interned");
                let mut reached: Vec<u8> = reached.into_iter().collect();
                reached.sort_unstable();
                assert_eq!(reached.as_slice(), graph.set(node.set), "seed {seed}");
            }
        }
    }
}

#[test]
fn parallel_walks_match_sequential_on_random_automata() {
    for seed in 0..SEEDS / 3 {
        let (a, b, alphabet) = random_pair(seed);
        let seq = compare_upto(
            &a,
            &b,
            &alphabet,
            MAX_LEN,
            CompareOptions {
                threads: Some(1),
                ..CompareOptions::counting()
            },
        );
        for threads in [2, 5] {
            let par = compare_upto(
                &a,
                &b,
                &alphabet,
                MAX_LEN,
                CompareOptions {
                    threads: Some(threads),
                    ..CompareOptions::counting()
                },
            );
            assert_eq!(seq.left_sizes, par.left_sizes, "seed {seed} t{threads}");
            assert_eq!(seq.right_sizes, par.right_sizes, "seed {seed} t{threads}");
            assert_eq!(
                seq.left_not_in_right.is_some(),
                par.left_not_in_right.is_some(),
                "seed {seed} t{threads}"
            );
            assert_eq!(
                seq.peak_level_width, par.peak_level_width,
                "seed {seed} t{threads}"
            );
        }
    }
}
