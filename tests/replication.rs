//! Cross-crate integration: the operational replicated objects against
//! their lattice specifications, under failure injection.

use relaxation_lattice::automata::ObjectAutomaton;
use relaxation_lattice::core::lattices::taxi::{TaxiLattice, TaxiPoint};
use relaxation_lattice::queues::{AccountOp, PQueueAutomaton};
use relaxation_lattice::quorum::relation::{AccountKind, QueueKind};
use relaxation_lattice::quorum::runtime::{
    AccountInv, BankAccountType, Outcome, QueueInv, TaxiQueueType,
};
use relaxation_lattice::quorum::{queue_relation, ClientConfig, QuorumSystem, VotingAssignment};
use relaxation_lattice::sim::{FaultSchedule, NetworkConfig, NodeId, SimTime};

fn preferred_assignment(n: usize) -> VotingAssignment<QueueKind> {
    let maj = n / 2 + 1;
    let a = VotingAssignment::new(n)
        .with_initial(QueueKind::Enq, 1)
        .with_final(QueueKind::Enq, maj)
        .with_initial(QueueKind::Deq, maj)
        .with_final(QueueKind::Deq, maj);
    assert!(a.satisfies(&queue_relation(true, true)));
    a
}

#[test]
fn healthy_runs_are_one_copy_serializable_across_seeds() {
    for seed in 0..15 {
        let mut sys = QuorumSystem::new(
            TaxiQueueType,
            3,
            preferred_assignment(3),
            ClientConfig::default(),
            NetworkConfig::new(1, 15, 0.0),
            seed,
        );
        for i in [4, 9, 1, 7] {
            sys.submit(QueueInv::Enq(i));
        }
        for _ in 0..4 {
            sys.submit(QueueInv::Deq);
        }
        assert!(sys.run_to_quiescence(1_000_000));
        let h = sys.merged_history();
        assert!(
            PQueueAutomaton::new().accepts(&h),
            "seed {seed}: {h} is not a PQ history"
        );
    }
}

#[test]
fn relaxed_runs_stay_within_the_lattice_bottom() {
    // All-quorums-of-one under crash churn: whatever happens, the merged
    // history is accepted by the degenerate behavior (items are never
    // invented), i.e. degradation stays *within the specified lattice*.
    let lattice = TaxiLattice::new();
    let degen = lattice.reference(TaxiPoint {
        q1: false,
        q2: false,
    });
    for seed in 0..15 {
        let assignment = VotingAssignment::new(3)
            .with_initial(QueueKind::Enq, 1)
            .with_final(QueueKind::Enq, 1)
            .with_initial(QueueKind::Deq, 1)
            .with_final(QueueKind::Deq, 1);
        let mut sys = QuorumSystem::new(
            TaxiQueueType,
            3,
            assignment,
            ClientConfig { timeout: 100 },
            NetworkConfig::new(1, 15, 0.0),
            seed,
        );
        sys.world_mut().set_schedule(
            FaultSchedule::new()
                .down_between(NodeId(0), SimTime(50), SimTime(400))
                .down_between(NodeId(1), SimTime(250), SimTime(600)),
        );
        for i in [3, 8, 5] {
            sys.submit(QueueInv::Enq(i));
        }
        for _ in 0..3 {
            sys.submit(QueueInv::Deq);
        }
        sys.run_to_quiescence(1_000_000);
        let h = sys.merged_history();
        assert!(degen.accepts(&h), "seed {seed}: {h} outside the lattice");
    }
}

#[test]
fn account_never_overdraws_under_partitions_and_loss() {
    // A2 held (debit finals cover all sites), A1 relaxed, messages lost,
    // one replica flapping: completed DebitOks never exceed credits.
    for seed in 0..10 {
        let assignment = VotingAssignment::new(3)
            .with_initial(AccountKind::Credit, 1)
            .with_final(AccountKind::Credit, 1)
            .with_initial(AccountKind::Debit, 1)
            .with_final(AccountKind::Debit, 3);
        let mut sys = QuorumSystem::new(
            BankAccountType,
            3,
            assignment,
            ClientConfig { timeout: 300 },
            NetworkConfig::new(1, 20, 0.05),
            seed,
        );
        sys.world_mut()
            .set_schedule(FaultSchedule::new().down_between(NodeId(2), SimTime(100), SimTime(450)));
        sys.submit(AccountInv::Credit(10));
        sys.submit(AccountInv::Debit(4));
        sys.submit(AccountInv::Credit(3));
        sys.submit(AccountInv::Debit(9));
        sys.submit(AccountInv::Debit(2));
        sys.run_to_quiescence(2_000_000);

        let mut credits = 0i64;
        let mut debits = 0i64;
        for o in sys.outcomes() {
            if let Outcome::Completed { op, .. } = o {
                match op {
                    AccountOp::Credit(n) => credits += i64::from(*n),
                    AccountOp::DebitOk(n) => debits += i64::from(*n),
                    AccountOp::DebitOverdraft(_) => {}
                }
            }
        }
        assert!(
            debits <= credits,
            "seed {seed}: overdrew ({debits} > {credits})"
        );
    }
}

#[test]
fn operational_account_histories_live_in_the_declarative_lattice() {
    // Cross-validation of the two sides of the paper: the *operational*
    // replicated account (A1 relaxed, A2 held) only ever produces merged
    // histories that the *declarative* QCA(Account, {A2}, η) accepts. The
    // runtime's actual read-quorum views are existence witnesses for the
    // QCA's Q-views.
    use relaxation_lattice::core::lattices::account::AccountLattice;
    let lattice = AccountLattice::new();
    let relaxed = lattice.qca_unchecked(false, true);
    let preferred = lattice.qca_unchecked(true, true);

    let mut saw_degraded = false;
    for seed in 0..25 {
        let assignment = VotingAssignment::new(3)
            .with_initial(AccountKind::Credit, 0)
            .with_final(AccountKind::Credit, 1)
            .with_initial(AccountKind::Debit, 1)
            .with_final(AccountKind::Debit, 3);
        let mut sys = QuorumSystem::new(
            BankAccountType,
            3,
            assignment,
            ClientConfig::default(),
            NetworkConfig::new(1, 25, 0.0),
            seed,
        );
        sys.submit(AccountInv::Credit(7));
        sys.submit(AccountInv::Debit(5));
        sys.submit(AccountInv::Credit(2));
        sys.submit(AccountInv::Debit(4));
        sys.run_to_quiescence(1_000_000);

        let h = sys.merged_history();
        assert!(
            relaxed.accepts(&h),
            "seed {seed}: {h} outside QCA(Account, {{A2}}, η)"
        );
        if !preferred.accepts(&h) {
            saw_degraded = true; // a genuinely degraded (but specified) run
        }
    }
    assert!(
        saw_degraded,
        "expected at least one spurious bounce across seeds"
    );
}

#[test]
fn availability_ordering_matches_quorum_sizes() {
    // Under the same outage, the enq-cheap assignment completes strictly
    // more Enq operations than the majority assignment completes Deqs.
    let outage = || {
        FaultSchedule::new()
            .down_between(NodeId(0), SimTime(0), SimTime(10_000))
            .down_between(NodeId(1), SimTime(0), SimTime(10_000))
    };
    // Majority assignment: everything needs 2 of 3 — all unavailable.
    let mut majority = QuorumSystem::new(
        TaxiQueueType,
        3,
        preferred_assignment(3),
        ClientConfig { timeout: 100 },
        NetworkConfig::default(),
        5,
    );
    majority.world_mut().set_schedule(outage());
    majority.submit(QueueInv::Enq(1));
    majority.run_until(SimTime(5_000));
    let majority_ok = majority
        .outcomes()
        .iter()
        .filter(|o| o.is_completed())
        .count();

    // Enq-cheap: quorums of one for Enq still work.
    let enq_cheap = VotingAssignment::new(3)
        .with_initial(QueueKind::Enq, 1)
        .with_final(QueueKind::Enq, 1)
        .with_initial(QueueKind::Deq, 3)
        .with_final(QueueKind::Deq, 1);
    let mut cheap = QuorumSystem::new(
        TaxiQueueType,
        3,
        enq_cheap,
        ClientConfig { timeout: 100 },
        NetworkConfig::default(),
        5,
    );
    cheap.world_mut().set_schedule(outage());
    cheap.submit(QueueInv::Enq(1));
    cheap.run_until(SimTime(5_000));
    let cheap_ok = cheap.outcomes().iter().filter(|o| o.is_completed()).count();

    assert_eq!(majority_ok, 0);
    assert_eq!(cheap_ok, 1);
}

#[test]
fn trace_analysis_names_the_flapping_partitions_as_degradation_root_cause() {
    // The §3.3 degradation scenario, closed through the offline pipeline:
    // run with trace + monitor, export JSONL, re-ingest, rebuild the
    // happens-before DAG, and assert (a) per-op latency attribution sums
    // exactly to each measured end-to-end latency, and (b) the causal
    // fault cut behind the witnessed PQ -> MPQ transition is exactly the
    // two flapping partitions — the later crash, which is causally
    // unrelated to the witness, must not appear.
    use relaxation_lattice::quorum::queue_lattice_monitor;
    use relaxation_lattice::sim::{Fault, Partition};
    use relaxation_lattice::trace::{read_trace, EventKind, TraceAnalysis};

    let n = 3;
    let client = NodeId(n);
    let schedule = FaultSchedule::new()
        .at(
            SimTime(200),
            Fault::Partition(Partition::groups(vec![
                vec![client, NodeId(0)],
                vec![NodeId(1), NodeId(2)],
            ])),
        )
        .at(
            SimTime(400),
            Fault::Partition(Partition::groups(vec![
                vec![client, NodeId(1)],
                vec![NodeId(0), NodeId(2)],
            ])),
        )
        .at(SimTime(600), Fault::Crash(NodeId(1)))
        .at(SimTime(900), Fault::Heal)
        .at(SimTime(900), Fault::Recover(NodeId(1)));

    // Q1 holds, Q2 deliberately dropped: duplication (MPQ) is invited.
    let q1_only = VotingAssignment::new(n)
        .with_initial(QueueKind::Enq, 1)
        .with_final(QueueKind::Enq, n)
        .with_initial(QueueKind::Deq, 1)
        .with_final(QueueKind::Deq, 1);
    let mut sys = QuorumSystem::new(
        TaxiQueueType,
        n,
        q1_only,
        ClientConfig::default(),
        NetworkConfig::new(1, 10, 0.0),
        0x5EED,
    )
    .with_trace(4096)
    .with_monitor(queue_lattice_monitor());
    sys.world_mut().set_schedule(schedule);

    sys.submit(QueueInv::Enq(5));
    sys.run_until(SimTime(200));
    sys.submit(QueueInv::Deq); // served by r0
    sys.run_until(SimTime(400));
    sys.submit(QueueInv::Deq); // served *again* by r1 — the witness
    sys.run_until(SimTime(600));
    sys.submit(QueueInv::Deq); // r1 down: timeout
    sys.run_until(SimTime(900));
    sys.submit(QueueInv::Enq(9));
    sys.submit(QueueInv::Deq);
    assert!(sys.run_to_quiescence(1_000_000));

    // Export and re-ingest: the analysis sees only the JSONL bytes.
    let jsonl = sys.world().tracer().export_jsonl();
    let parsed = read_trace(&jsonl).expect("exported trace re-ingests");
    let analysis = TraceAnalysis::from_trace(parsed);

    // (a) Attribution is exact: the four phases partition each op's
    // measured end-to-end latency.
    assert!(!analysis.spans().is_empty());
    for span in analysis.spans() {
        assert_eq!(
            span.breakdown.total(),
            span.latency,
            "attribution must sum to the measured latency for {}",
            span.label.as_str()
        );
    }

    // (b) Exactly one degradation, PQ (and OPQ) -> MPQ, and its causal
    // fault cut is the two flapping partitions at t=200 and t=400.
    assert_eq!(analysis.root_causes().len(), 1);
    let rc = &analysis.root_causes()[0];
    assert!(rc.transition.left.iter().any(|l| l == "PQ"));
    assert_eq!(rc.transition.now.as_deref(), Some("MPQ"));
    assert!(rc.transition.witness.starts_with("Deq"));
    let events = analysis.graph().events();
    let cut: Vec<(u64, &EventKind)> = rc
        .fault_cut
        .iter()
        .map(|&i| (events[i].time, &events[i].kind))
        .collect();
    assert_eq!(cut.len(), 2, "cut should be the two partitions: {cut:?}");
    assert!(matches!(cut[0], (200, EventKind::PartitionSet { .. })));
    assert!(matches!(cut[1], (400, EventKind::PartitionSet { .. })));
    assert!(
        !rc.fault_cut
            .iter()
            .any(|&i| matches!(events[i].kind, EventKind::NodeCrashed { .. })),
        "the crash at t=600 is causally after the witness"
    );

    // The report names the faults in plain language.
    let report = analysis.report();
    assert!(report.contains("why we degraded"));
    assert!(report.contains("partition set"));
}
