//! Cross-crate integration: the operational replicated objects against
//! their lattice specifications, under failure injection.

use relaxation_lattice::automata::ObjectAutomaton;
use relaxation_lattice::core::lattices::taxi::{TaxiLattice, TaxiPoint};
use relaxation_lattice::queues::{AccountOp, PQueueAutomaton};
use relaxation_lattice::quorum::relation::{AccountKind, QueueKind};
use relaxation_lattice::quorum::runtime::{
    AccountInv, BankAccountType, Outcome, QueueInv, TaxiQueueType,
};
use relaxation_lattice::quorum::{queue_relation, ClientConfig, QuorumSystem, VotingAssignment};
use relaxation_lattice::sim::{FaultSchedule, NetworkConfig, NodeId, SimTime};

fn preferred_assignment(n: usize) -> VotingAssignment<QueueKind> {
    let maj = n / 2 + 1;
    let a = VotingAssignment::new(n)
        .with_initial(QueueKind::Enq, 1)
        .with_final(QueueKind::Enq, maj)
        .with_initial(QueueKind::Deq, maj)
        .with_final(QueueKind::Deq, maj);
    assert!(a.satisfies(&queue_relation(true, true)));
    a
}

#[test]
fn healthy_runs_are_one_copy_serializable_across_seeds() {
    for seed in 0..15 {
        let mut sys = QuorumSystem::new(
            TaxiQueueType,
            3,
            preferred_assignment(3),
            ClientConfig::default(),
            NetworkConfig::new(1, 15, 0.0),
            seed,
        );
        for i in [4, 9, 1, 7] {
            sys.submit(QueueInv::Enq(i));
        }
        for _ in 0..4 {
            sys.submit(QueueInv::Deq);
        }
        assert!(sys.run_to_quiescence(1_000_000));
        let h = sys.merged_history();
        assert!(
            PQueueAutomaton::new().accepts(&h),
            "seed {seed}: {h} is not a PQ history"
        );
    }
}

#[test]
fn relaxed_runs_stay_within_the_lattice_bottom() {
    // All-quorums-of-one under crash churn: whatever happens, the merged
    // history is accepted by the degenerate behavior (items are never
    // invented), i.e. degradation stays *within the specified lattice*.
    let lattice = TaxiLattice::new();
    let degen = lattice.reference(TaxiPoint {
        q1: false,
        q2: false,
    });
    for seed in 0..15 {
        let assignment = VotingAssignment::new(3)
            .with_initial(QueueKind::Enq, 1)
            .with_final(QueueKind::Enq, 1)
            .with_initial(QueueKind::Deq, 1)
            .with_final(QueueKind::Deq, 1);
        let mut sys = QuorumSystem::new(
            TaxiQueueType,
            3,
            assignment,
            ClientConfig { timeout: 100 },
            NetworkConfig::new(1, 15, 0.0),
            seed,
        );
        sys.world_mut().set_schedule(
            FaultSchedule::new()
                .down_between(NodeId(0), SimTime(50), SimTime(400))
                .down_between(NodeId(1), SimTime(250), SimTime(600)),
        );
        for i in [3, 8, 5] {
            sys.submit(QueueInv::Enq(i));
        }
        for _ in 0..3 {
            sys.submit(QueueInv::Deq);
        }
        sys.run_to_quiescence(1_000_000);
        let h = sys.merged_history();
        assert!(degen.accepts(&h), "seed {seed}: {h} outside the lattice");
    }
}

#[test]
fn account_never_overdraws_under_partitions_and_loss() {
    // A2 held (debit finals cover all sites), A1 relaxed, messages lost,
    // one replica flapping: completed DebitOks never exceed credits.
    for seed in 0..10 {
        let assignment = VotingAssignment::new(3)
            .with_initial(AccountKind::Credit, 1)
            .with_final(AccountKind::Credit, 1)
            .with_initial(AccountKind::Debit, 1)
            .with_final(AccountKind::Debit, 3);
        let mut sys = QuorumSystem::new(
            BankAccountType,
            3,
            assignment,
            ClientConfig { timeout: 300 },
            NetworkConfig::new(1, 20, 0.05),
            seed,
        );
        sys.world_mut()
            .set_schedule(FaultSchedule::new().down_between(NodeId(2), SimTime(100), SimTime(450)));
        sys.submit(AccountInv::Credit(10));
        sys.submit(AccountInv::Debit(4));
        sys.submit(AccountInv::Credit(3));
        sys.submit(AccountInv::Debit(9));
        sys.submit(AccountInv::Debit(2));
        sys.run_to_quiescence(2_000_000);

        let mut credits = 0i64;
        let mut debits = 0i64;
        for o in sys.outcomes() {
            if let Outcome::Completed { op, .. } = o {
                match op {
                    AccountOp::Credit(n) => credits += i64::from(*n),
                    AccountOp::DebitOk(n) => debits += i64::from(*n),
                    AccountOp::DebitOverdraft(_) => {}
                }
            }
        }
        assert!(
            debits <= credits,
            "seed {seed}: overdrew ({debits} > {credits})"
        );
    }
}

#[test]
fn operational_account_histories_live_in_the_declarative_lattice() {
    // Cross-validation of the two sides of the paper: the *operational*
    // replicated account (A1 relaxed, A2 held) only ever produces merged
    // histories that the *declarative* QCA(Account, {A2}, η) accepts. The
    // runtime's actual read-quorum views are existence witnesses for the
    // QCA's Q-views.
    use relaxation_lattice::core::lattices::account::AccountLattice;
    let lattice = AccountLattice::new();
    let relaxed = lattice.qca_unchecked(false, true);
    let preferred = lattice.qca_unchecked(true, true);

    let mut saw_degraded = false;
    for seed in 0..25 {
        let assignment = VotingAssignment::new(3)
            .with_initial(AccountKind::Credit, 0)
            .with_final(AccountKind::Credit, 1)
            .with_initial(AccountKind::Debit, 1)
            .with_final(AccountKind::Debit, 3);
        let mut sys = QuorumSystem::new(
            BankAccountType,
            3,
            assignment,
            ClientConfig::default(),
            NetworkConfig::new(1, 25, 0.0),
            seed,
        );
        sys.submit(AccountInv::Credit(7));
        sys.submit(AccountInv::Debit(5));
        sys.submit(AccountInv::Credit(2));
        sys.submit(AccountInv::Debit(4));
        sys.run_to_quiescence(1_000_000);

        let h = sys.merged_history();
        assert!(
            relaxed.accepts(&h),
            "seed {seed}: {h} outside QCA(Account, {{A2}}, η)"
        );
        if !preferred.accepts(&h) {
            saw_degraded = true; // a genuinely degraded (but specified) run
        }
    }
    assert!(
        saw_degraded,
        "expected at least one spurious bounce across seeds"
    );
}

#[test]
fn availability_ordering_matches_quorum_sizes() {
    // Under the same outage, the enq-cheap assignment completes strictly
    // more Enq operations than the majority assignment completes Deqs.
    let outage = || {
        FaultSchedule::new()
            .down_between(NodeId(0), SimTime(0), SimTime(10_000))
            .down_between(NodeId(1), SimTime(0), SimTime(10_000))
    };
    // Majority assignment: everything needs 2 of 3 — all unavailable.
    let mut majority = QuorumSystem::new(
        TaxiQueueType,
        3,
        preferred_assignment(3),
        ClientConfig { timeout: 100 },
        NetworkConfig::default(),
        5,
    );
    majority.world_mut().set_schedule(outage());
    majority.submit(QueueInv::Enq(1));
    majority.run_until(SimTime(5_000));
    let majority_ok = majority
        .outcomes()
        .iter()
        .filter(|o| o.is_completed())
        .count();

    // Enq-cheap: quorums of one for Enq still work.
    let enq_cheap = VotingAssignment::new(3)
        .with_initial(QueueKind::Enq, 1)
        .with_final(QueueKind::Enq, 1)
        .with_initial(QueueKind::Deq, 3)
        .with_final(QueueKind::Deq, 1);
    let mut cheap = QuorumSystem::new(
        TaxiQueueType,
        3,
        enq_cheap,
        ClientConfig { timeout: 100 },
        NetworkConfig::default(),
        5,
    );
    cheap.world_mut().set_schedule(outage());
    cheap.submit(QueueInv::Enq(1));
    cheap.run_until(SimTime(5_000));
    let cheap_ok = cheap.outcomes().iter().filter(|o| o.is_completed()).count();

    assert_eq!(majority_ok, 0);
    assert_eq!(cheap_ok, 1);
}
