//! Cross-crate integration: the relaxation lattice method end-to-end
//! (spec engine → automata → lattices → verification).

use relaxation_lattice::automata::{
    check_reverse_inclusion_lattice, included_upto, language_upto, strictly_included_upto,
    RelaxationMap,
};
use relaxation_lattice::core::lattices::semiqueue::{SemiqueueLattice, SsQueueLattice};
use relaxation_lattice::core::lattices::taxi::{TaxiLattice, TaxiPoint};
use relaxation_lattice::core::theorem4::verify_taxi_lattice;
use relaxation_lattice::queues::{queue_alphabet, FifoAutomaton, PQueueAutomaton};
use relaxation_lattice::spec::{paper_theories, parse_term, Rewriter};

#[test]
fn theorem_4_and_all_lattice_points_verify() {
    let v = verify_taxi_lattice(&[1, 2], 5);
    assert!(v.holds(), "{:?}", v.points);
    let v3 = verify_taxi_lattice(&[1, 2, 3], 3);
    assert!(v3.holds(), "{:?}", v3.points);
}

#[test]
fn taxi_lattice_is_strictly_ordered() {
    // Preferred ⊊ each middle point ⊊ bottom (languages strictly grow as
    // constraints relax).
    let lattice = TaxiLattice::new();
    let alphabet = queue_alphabet(&[1, 2]);
    let top = lattice.qca(TaxiPoint { q1: true, q2: true });
    let bottom = lattice.qca(TaxiPoint {
        q1: false,
        q2: false,
    });
    for mid_point in [
        TaxiPoint {
            q1: true,
            q2: false,
        },
        TaxiPoint {
            q1: false,
            q2: true,
        },
    ] {
        let mid = lattice.qca(mid_point);
        strictly_included_upto(&top, &mid, &alphabet, 5)
            .expect("top strictly below mid in language order");
        strictly_included_upto(&mid, &bottom, &alphabet, 5)
            .expect("mid strictly below bottom in language order");
    }
    // The two middle points are incomparable.
    let mpq = lattice.qca(TaxiPoint {
        q1: true,
        q2: false,
    });
    let opq = lattice.qca(TaxiPoint {
        q1: false,
        q2: true,
    });
    assert!(included_upto(&mpq, &opq, &alphabet, 5).is_err());
    assert!(included_upto(&opq, &mpq, &alphabet, 5).is_err());
}

#[test]
fn preferred_behaviors_match_the_plain_specifications() {
    // The top of each lattice is the undegraded object.
    let taxi = TaxiLattice::new();
    let alphabet = queue_alphabet(&[1, 2]);
    let top = taxi.preferred().expect("taxi lattice has a top");
    assert!(
        relaxation_lattice::automata::equal_upto(&top, &PQueueAutomaton::new(), &alphabet, 5)
            .is_ok()
    );
    let semiqueue = SemiqueueLattice::new(3);
    let top = semiqueue.preferred().expect("semiqueue lattice has a top");
    assert!(
        relaxation_lattice::automata::equal_upto(&top, &FifoAutomaton::new(), &alphabet, 5).is_ok()
    );
}

#[test]
fn all_prebuilt_lattices_satisfy_the_lattice_laws() {
    let alphabet = queue_alphabet(&[1, 2]);
    assert!(check_reverse_inclusion_lattice(&TaxiLattice::new(), &alphabet, 4).is_ok());
    assert!(check_reverse_inclusion_lattice(&SemiqueueLattice::new(3), &alphabet, 4).is_ok());
    assert!(check_reverse_inclusion_lattice(&SsQueueLattice::new(2, 2), &alphabet, 4).is_ok());
}

#[test]
fn algebraic_and_operational_views_agree_on_language_membership() {
    // Every history accepted by the native PQ automaton replays cleanly
    // against the Larch PQueue interface. The state is carried as a
    // *term* built by the operations themselves: the Bag trait has no
    // commutativity axiom, so `ins(ins(emp,1),2)` and `ins(ins(emp,2),1)`
    // are distinct normal forms that denote the same multiset — exactly
    // the paper's term/value distinction (§2.4).
    use relaxation_lattice::queues::QueueOp;
    use relaxation_lattice::spec::traits::pqueue_interface;
    use relaxation_lattice::spec::Term;

    let iface = pqueue_interface().expect("interface parses");
    let automaton = PQueueAutomaton::new();
    let alphabet = queue_alphabet(&[1, 2]);

    for h in language_upto(&automaton, &alphabet, 4) {
        let mut state = Term::constant("emp");
        for op in h.iter() {
            match op {
                QueueOp::Enq(e) => {
                    let next = Term::app("ins", vec![state.clone(), Term::Int(*e)]);
                    let enq = iface.operation("Enq").expect("Enq exists").clone();
                    let check = iface
                        .check_transition(&enq, &state, &[Term::Int(*e)], &[], &next)
                        .expect("evaluates");
                    assert!(check.is_accepted(), "Enq rejected in {h}");
                    state = next;
                }
                QueueOp::Deq(e) => {
                    // The post-state is del(state, e), normalized by the
                    // trait's own rewrite rules.
                    let next = iface
                        .rewriter()
                        .normalize(&Term::app("del", vec![state.clone(), Term::Int(*e)]))
                        .expect("normalizes");
                    let deq = iface.operation("Deq").expect("Deq exists").clone();
                    let check = iface
                        .check_transition(&deq, &state, &[], &[Term::Int(*e)], &next)
                        .expect("evaluates");
                    assert!(check.is_accepted(), "Deq rejected in {h}");
                    state = next;
                }
            }
        }
    }
}

#[test]
fn mpq_automaton_agrees_with_its_larch_interface() {
    // Figure 3-3's nondeterministic interface, replayed: for every
    // history accepted by the native MPQ automaton and every transition
    // edge along it, the Larch interface accepts the same edge. State is
    // carried as a pair of *terms* (present, absent) built the way the
    // postconditions build them, mirroring the term/value distinction.
    use relaxation_lattice::queues::{MpqAutomaton, QueueOp};
    use relaxation_lattice::spec::traits::mpqueue_interface;
    use relaxation_lattice::spec::Term;

    let iface = mpqueue_interface().expect("interface parses");
    let rw = iface.rewriter().clone();
    let automaton = MpqAutomaton::new();
    let alphabet = queue_alphabet(&[1, 2]);

    let mpq = |p: &Term, a: &Term| Term::app("mpq", vec![p.clone(), a.clone()]);

    for h in language_upto(&automaton, &alphabet, 4) {
        // Term-level states reachable after each prefix (sets, since the
        // automaton is nondeterministic).
        let mut states: Vec<(Term, Term)> = vec![(Term::constant("emp"), Term::constant("emp"))];
        for op in h.iter() {
            let mut next_states: Vec<(Term, Term)> = Vec::new();
            for (p, a) in &states {
                let pre = mpq(p, a);
                match op {
                    QueueOp::Enq(e) => {
                        let p2 = Term::app("ins", vec![p.clone(), Term::Int(*e)]);
                        let post = mpq(&p2, a);
                        let enq = iface.operation("Enq").expect("Enq").clone();
                        let check = iface
                            .check_transition(&enq, &pre, &[Term::Int(*e)], &[], &post)
                            .expect("evaluates");
                        assert!(check.is_accepted(), "Enq rejected in {h}");
                        next_states.push((p2, a.clone()));
                    }
                    QueueOp::Deq(e) => {
                        let deq = iface.operation("Deq").expect("Deq").clone();
                        // Branch 1: re-return from absent, state unchanged.
                        let same = iface
                            .check_transition(&deq, &pre, &[], &[Term::Int(*e)], &pre)
                            .expect("evaluates");
                        if same.is_accepted() {
                            next_states.push((p.clone(), a.clone()));
                        }
                        // Branch 2: transfer best present to absent.
                        let p2 = rw
                            .normalize(&Term::app("del", vec![p.clone(), Term::Int(*e)]))
                            .expect("normalizes");
                        let a2 = Term::app("ins", vec![a.clone(), Term::Int(*e)]);
                        let post = mpq(&p2, &a2);
                        let moved = iface
                            .check_transition(&deq, &pre, &[], &[Term::Int(*e)], &post)
                            .expect("evaluates");
                        if moved.is_accepted() {
                            next_states.push((p2, a2));
                        }
                    }
                }
            }
            assert!(
                !next_states.is_empty(),
                "interface rejected every branch of {op} along {h}"
            );
            next_states.dedup();
            states = next_states;
        }
    }
}

#[test]
fn semiqueue_and_account_automata_agree_with_their_interfaces() {
    use relaxation_lattice::queues::ops::account_alphabet;
    use relaxation_lattice::queues::{AccountAutomaton, AccountOp, QueueOp, SemiqueueAutomaton};
    use relaxation_lattice::spec::traits::{account_interface, semiqueue_interface};
    use relaxation_lattice::spec::Term;

    // Semiqueue_2 (Figure 4-1): replay each accepted history through the
    // parameterized interface, tracking term state. The native automaton
    // may offer several successors per Deq (different positions); the
    // interface must accept at least the one built by its own
    // postcondition (del = newest-occurrence removal).
    let k = 2;
    let iface = semiqueue_interface(k).expect("interface parses");
    let rw = iface.rewriter().clone();
    let automaton = SemiqueueAutomaton::new(k as usize);
    let alphabet = queue_alphabet(&[1, 2]);
    for h in language_upto(&automaton, &alphabet, 4) {
        let mut state = Term::constant("emp");
        for op in h.iter() {
            match op {
                QueueOp::Enq(e) => {
                    let next = Term::app("ins", vec![state.clone(), Term::Int(*e)]);
                    let enq = iface.operation("Enq").expect("Enq").clone();
                    assert!(iface
                        .check_transition(&enq, &state, &[Term::Int(*e)], &[], &next)
                        .expect("evaluates")
                        .is_accepted());
                    state = next;
                }
                QueueOp::Deq(e) => {
                    let next = rw
                        .normalize(&Term::app("del", vec![state.clone(), Term::Int(*e)]))
                        .expect("normalizes");
                    let deq = iface.operation("Deq").expect("Deq").clone();
                    let check = iface
                        .check_transition(&deq, &state, &[], &[Term::Int(*e)], &next)
                        .expect("evaluates");
                    assert!(check.is_accepted(), "Deq({e}) rejected along {h}");
                    state = next;
                }
            }
        }
    }

    // Account (§3.4): every accepted history replays through the
    // interface, including Overdraft edges.
    let iface = account_interface().expect("interface parses");
    let automaton = AccountAutomaton::new();
    let alphabet = account_alphabet(&[1, 2]);
    for h in language_upto(&automaton, &alphabet, 4) {
        let mut balance: i64 = 0;
        for op in h.iter() {
            let state = Term::app("acct", vec![Term::Int(balance)]);
            let (decl, amount, next_balance) = match op {
                AccountOp::Credit(n) => ("Credit", *n, balance + i64::from(*n)),
                AccountOp::DebitOk(n) => ("Debit", *n, balance - i64::from(*n)),
                AccountOp::DebitOverdraft(n) => ("Debit", *n, balance),
            };
            let termination = match op {
                AccountOp::DebitOverdraft(_) => "Overdraft",
                _ => "Ok",
            };
            let next = Term::app("acct", vec![Term::Int(next_balance)]);
            let op_iface = iface
                .operation_with_termination(decl, termination)
                .expect("declared")
                .clone();
            let check = iface
                .check_transition(
                    &op_iface,
                    &state,
                    &[Term::Int(i64::from(amount))],
                    &[],
                    &next,
                )
                .expect("evaluates");
            assert!(check.is_accepted(), "{op} rejected along {h}");
            balance = next_balance;
        }
    }
}

#[test]
fn rewriting_engine_handles_the_papers_worked_equalities() {
    let set = paper_theories().expect("theories assemble");
    let bag = set.theory("Bag").expect("Bag");
    let rw = Rewriter::new(bag).expect("rewriter");
    let lhs = parse_term(bag, "del(ins(ins(emp, 3), 3), 3)").expect("parses");
    let rhs = parse_term(bag, "ins(emp, 3)").expect("parses");
    assert!(rw.equal(&lhs, &rhs).expect("normalizes"));

    let fifo = set.theory("FifoQ").expect("FifoQ");
    let rw = Rewriter::new(fifo).expect("rewriter");
    let t = parse_term(fifo, "first(ins(ins(emp, 3), 3))").expect("parses");
    assert_eq!(
        rw.normalize(&t).expect("normalizes"),
        relaxation_lattice::spec::Term::Int(3)
    );
}
