//! The replicated bank account of §3.4, operational.
//!
//! Customers' accounts live at three branch offices. ATMs announce a
//! credit as soon as one branch records it; the rest propagate in the
//! background (`A1` relaxed). Debits record at every branch (`A2` held),
//! so the bank can never be overdrawn — but a debit racing a fresh
//! credit may bounce spuriously, and the chance of that shrinks as the
//! credit propagates.
//!
//! Run with `cargo run --example atm_bank`.

use relaxation_lattice::queues::AccountOp;
use relaxation_lattice::quorum::relation::AccountKind;
use relaxation_lattice::quorum::runtime::{AccountInv, BankAccountType, Outcome};
use relaxation_lattice::quorum::{ClientConfig, QuorumSystem, VotingAssignment};
use relaxation_lattice::sim::{NetworkConfig, SimTime};

fn atm_assignment() -> VotingAssignment<AccountKind> {
    VotingAssignment::new(3)
        .with_initial(AccountKind::Credit, 1)
        .with_final(AccountKind::Credit, 1) // announce after first branch
        .with_initial(AccountKind::Debit, 1)
        .with_final(AccountKind::Debit, 3) // record at every branch: A2
}

fn one_run(gap: u64, seed: u64) -> (bool, u64) {
    let mut sys = QuorumSystem::new(
        BankAccountType,
        3,
        atm_assignment(),
        ClientConfig::default(),
        NetworkConfig::new(1, 20, 0.0),
        seed,
    );
    sys.submit(AccountInv::Credit(100));
    sys.run_to_first_outcome(100_000);
    let announced = sys.world().now();
    sys.run_until(SimTime(announced.ticks() + gap));
    sys.submit(AccountInv::Debit(60));
    sys.run_to_quiescence(100_000);
    match sys.outcomes().get(1) {
        Some(Outcome::Completed {
            op: AccountOp::DebitOverdraft(_),
            latency,
        }) => (true, *latency),
        Some(Outcome::Completed { latency, .. }) => (false, *latency),
        _ => (false, 0),
    }
}

fn main() {
    println!("ATM account at 3 branches: credit announced after one branch,");
    println!("debit checked against one branch, recorded at all (A1 relaxed, A2 held).\n");

    println!("deposit $100, then withdraw $60 after a delay:");
    println!(
        "{:>12}  {:>14}  {:>10}",
        "gap (ticks)", "bounce rate", "trials"
    );
    for gap in [0u64, 5, 15, 30, 60] {
        let trials = 300;
        let bounced = (0..trials).filter(|&s| one_run(gap, 1000 + s).0).count();
        println!(
            "{:>12}  {:>13.1}%  {:>10}",
            gap,
            100.0 * bounced as f64 / trials as f64,
            trials
        );
    }

    println!("\nthe same withdrawal issued 'too soon' can bounce spuriously, but the");
    println!("bank's invariant survives every run: no account is ever overdrawn —");
    println!("that is what refusing to relax A2 buys (the sublattice of §3.4).");
}
