//! Quickstart: the relaxation lattice method in five minutes.
//!
//! Builds the paper's taxi-queue lattice, shows how constraint sets map
//! to behaviors, verifies the lattice laws, and drives the combined
//! environment+object automaton through a degradation-and-recovery
//! scenario.
//!
//! Run with `cargo run --example quickstart`.

use relaxation_lattice::automata::{
    check_reverse_inclusion_lattice, CombinedAutomaton, History, Input, ObjectAutomaton,
    RelaxationMap,
};
use relaxation_lattice::core::lattices::taxi::{
    TaxiEnvironment, TaxiEvent, TaxiLattice, TaxiPoint,
};
use relaxation_lattice::queues::{queue_alphabet, QueueOp};

fn main() {
    // 1. A relaxation lattice: constraint sets → automata.
    let lattice = TaxiLattice::new();
    println!("The taxi-queue relaxation lattice (constraints Q1, Q2):\n");
    for point in TaxiPoint::all() {
        let c = lattice.constraints(point);
        println!(
            "  {:8} → {:30} ({})",
            lattice.universe().render(c),
            point.behavior_name(),
            point.anomalies()
        );
    }

    // 2. The lattice laws, verified mechanically (bounded).
    let alphabet = queue_alphabet(&[1, 2]);
    let check = check_reverse_inclusion_lattice(&lattice, &alphabet, 4);
    println!(
        "\nlattice laws (reverse inclusion, join/meet preservation): {}",
        if check.is_ok() { "PASS" } else { "FAIL" }
    );

    // 3. Degraded behavior is *specified*, not accidental: the preferred
    //    point rejects out-of-order service, the {Q2} point tolerates it.
    let out_of_order = History::from(vec![
        QueueOp::Enq(2),
        QueueOp::Enq(9),
        QueueOp::Deq(2), // 9 is better — this skips it
    ]);
    let preferred = lattice.qca(TaxiPoint { q1: true, q2: true });
    let relaxed = lattice.qca(TaxiPoint {
        q1: false,
        q2: true,
    });
    println!("\nhistory: {out_of_order}");
    println!(
        "  accepted by QCA(PQ, {{Q1,Q2}})? {}",
        preferred.accepts(&out_of_order)
    );
    println!(
        "  accepted by QCA(PQ, {{Q2}})?    {}",
        relaxed.accepts(&out_of_order)
    );

    // 4. The environment drives which behavior is in force (§2.3).
    let combined = CombinedAutomaton::new(TaxiLattice::new(), TaxiEnvironment::new());
    let run = [
        Input::Op(QueueOp::Enq(2)),
        Input::Op(QueueOp::Enq(9)),
        Input::Event(TaxiEvent::Q1Lost), // partition: dispatcher can't see all enqueues
        Input::Op(QueueOp::Deq(2)),      // degraded: tolerated now
        Input::Event(TaxiEvent::Q1Restored),
        Input::Op(QueueOp::Deq(9)), // recovered: best-first again
    ];
    println!(
        "\ncombined environment+object run (degrade, serve out of order, recover): {}",
        if combined.accepts(&run) {
            "ACCEPTED"
        } else {
            "REJECTED"
        }
    );
}
