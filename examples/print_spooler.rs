//! The printing service of §4.2, operational.
//!
//! Clients spool files on a shared transactional queue; printer
//! controllers dequeue, print, and commit. Strict FIFO serializes the
//! printers; the optimistic strategy degrades to a semiqueue (out of
//! order, never duplicated); the pessimistic one to a stuttering queue
//! (in order, possibly duplicated). Each run's transactional schedule is
//! validated against the matching atomic specification.
//!
//! Run with `cargo run --example print_spooler`.

use relaxation_lattice::atomic::{
    serializable_in_commit_order, DequeueStrategy, Spooler, SpoolerConfig,
};
use relaxation_lattice::queues::{FifoAutomaton, SemiqueueAutomaton};

fn main() {
    let printers = 4;
    let jobs = 16;
    println!("print spooler: {jobs} jobs, {printers} concurrent printers, 10% aborts\n");

    for strategy in [
        DequeueStrategy::BlockingFifo,
        DequeueStrategy::Optimistic,
        DequeueStrategy::Pessimistic,
    ] {
        let report = Spooler::new(SpoolerConfig {
            strategy,
            printers,
            jobs,
            print_time: 4,
            abort_probability: 0.1,
            seed: 2026,
        })
        .run();

        println!("--- {strategy:?} ---");
        println!("  printed order: {:?}", report.printed);
        println!(
            "  makespan {} rounds, throughput {:.2} prints/round",
            report.rounds, report.throughput
        );
        println!(
            "  duplicates {}, max dequeue position {}, concurrent dequeuers ≤ {}",
            report.duplicates, report.max_deq_position, report.max_concurrent_dequeuers
        );

        // What the relaxation lattice promises for this strategy:
        let d = report.max_concurrent_dequeuers.max(1);
        match strategy {
            DequeueStrategy::BlockingFifo => {
                let ok = serializable_in_commit_order(&FifoAutomaton::new(), &report.schedule);
                println!("  hybrid-atomic wrt FIFO queue: {ok}");
            }
            DequeueStrategy::Optimistic => {
                let ok =
                    serializable_in_commit_order(&SemiqueueAutomaton::new(d), &report.schedule);
                println!("  hybrid-atomic wrt Semiqueue_{d}: {ok}");
            }
            DequeueStrategy::Pessimistic => {
                println!(
                    "  FIFO order preserved: {} (duplicates are the Stuttering_{d} degradation)",
                    report.max_deq_position == 0
                );
            }
        }
        println!();
    }

    println!("the degradation is *specified*: with ≤ k concurrent dequeuers the");
    println!("optimistic queue is Atomic(Semiqueue_k) and the pessimistic one");
    println!("Atomic(Stuttering_k Queue) — Figure 4-2's lattice, live.");
}
