//! The urban taxicab company of §3.3, operational.
//!
//! Dispatchers enqueue customer requests; drivers dequeue the
//! highest-priority pending one. The queue is replicated over five
//! unreliable sites. We run the same workload twice:
//!
//! * with quorums satisfying `{Q1, Q2}` — one-copy serializable, but
//!   dequeues become unavailable when a majority of sites crashes;
//! * with all quorums shrunk to one site (constraints relaxed) — always
//!   available, but the merged history degrades down the lattice, which
//!   we diagnose by asking *which lattice point* accepts it.
//!
//! Run with `cargo run --example taxi_dispatch`. Pass `--trace` to also
//! dump each run's structured event log (faults, quorum assembly, level
//! transitions) as JSONL next to the working directory.

use relaxation_lattice::automata::ObjectAutomaton;
use relaxation_lattice::core::lattices::taxi::{TaxiLattice, TaxiPoint};
use relaxation_lattice::quorum::relation::QueueKind;
use relaxation_lattice::quorum::runtime::{Outcome, QueueInv, TaxiQueueType};
use relaxation_lattice::quorum::{
    queue_lattice_monitor, ClientConfig, QuorumSystem, VotingAssignment,
};
use relaxation_lattice::sim::{Fault, FaultSchedule, NetworkConfig, NodeId, SimTime};

const N: usize = 5;

fn preferred_assignment() -> VotingAssignment<QueueKind> {
    // Majority Deq quorums (Q2), Enq finals intersecting Deq initials (Q1).
    VotingAssignment::new(N)
        .with_initial(QueueKind::Enq, 1)
        .with_final(QueueKind::Enq, 3)
        .with_initial(QueueKind::Deq, 3)
        .with_final(QueueKind::Deq, 3)
}

fn relaxed_assignment() -> VotingAssignment<QueueKind> {
    // Everything from any single available site: maximally available,
    // no intersection guarantees at all.
    VotingAssignment::new(N)
        .with_initial(QueueKind::Enq, 1)
        .with_final(QueueKind::Enq, 1)
        .with_initial(QueueKind::Deq, 1)
        .with_final(QueueKind::Deq, 1)
}

fn outage_schedule() -> FaultSchedule {
    // Three of five sites down between t=300 and t=1500.
    FaultSchedule::new()
        .down_between(NodeId(0), SimTime(300), SimTime(1500))
        .down_between(NodeId(1), SimTime(300), SimTime(1500))
        .at(SimTime(300), Fault::Crash(NodeId(2)))
        .at(SimTime(1500), Fault::Recover(NodeId(2)))
}

fn run(label: &str, slug: &str, assignment: VotingAssignment<QueueKind>, trace: bool) {
    let mut sys = QuorumSystem::new(
        TaxiQueueType,
        N,
        assignment,
        ClientConfig { timeout: 150 },
        NetworkConfig::new(1, 10, 0.0),
        7,
    )
    .with_monitor(queue_lattice_monitor());
    if trace {
        sys = sys.with_trace(8192);
    }
    sys.world_mut().set_schedule(outage_schedule());

    // Rush hour: three requests before the outage, dispatching during it.
    sys.submit(QueueInv::Enq(5)); // ordinary fare
    sys.submit(QueueInv::Enq(9)); // airport run, high priority
    sys.submit(QueueInv::Enq(2)); // short hop
    sys.run_until(SimTime(300));
    sys.submit(QueueInv::Deq);
    sys.submit(QueueInv::Deq);
    sys.run_until(SimTime(1600));
    sys.submit(QueueInv::Deq);
    sys.run_to_quiescence(1_000_000);

    println!("--- {label} ---");
    for (i, o) in sys.outcomes().iter().enumerate() {
        match o {
            Outcome::Completed { op, latency } => {
                println!("  op {i}: {op}  ({latency} ticks)");
            }
            Outcome::Refused { .. } => println!("  op {i}: refused (queue looked empty)"),
            Outcome::TimedOut => println!("  op {i}: UNAVAILABLE (no quorum)"),
        }
    }

    // Diagnose the merged replica history against the lattice.
    let h = sys.merged_history();
    let lattice = TaxiLattice::new();
    println!("  merged history: {h}");
    for point in TaxiPoint::all() {
        if lattice.reference(point).accepts(&h) {
            println!("  behaves as: {}", point.behavior_name());
            break;
        }
    }

    // The online monitor saw the same thing, live, from completion order.
    let monitor = sys.monitor().expect("monitor attached");
    for t in monitor.transitions() {
        println!(
            "  live monitor: left {:?} at op #{}, witness {}",
            t.left, t.op_index, t.witness
        );
    }
    println!(
        "  live monitor level: {}",
        monitor.current_level().unwrap_or("(below DegenPQ)")
    );

    if trace {
        let path = format!("taxi_dispatch_{slug}.jsonl");
        sys.world()
            .tracer()
            .write_jsonl(&path)
            .expect("write trace");
        println!("  trace: {} events -> {path}", sys.world().tracer().len());
    }
    println!();
}

fn main() {
    let trace = std::env::args().any(|a| a == "--trace");
    println!("Taxi dispatch over 5 replicated sites; 3 sites down t=300..1500.\n");
    run(
        "preferred quorums {Q1, Q2}",
        "preferred",
        preferred_assignment(),
        trace,
    );
    run(
        "relaxed quorums (any site)",
        "relaxed",
        relaxed_assignment(),
        trace,
    );
    println!("The preferred assignment refuses service during the outage;");
    println!("the relaxed one keeps dispatching at the cost of degraded order —");
    println!("exactly the trade the relaxation lattice makes explicit.");
}
